// Figure 18: best performance of the chunked interleaved implementation
// for chunk sizes 32…512 (the chunk size is also the thread-block size).
//
// Expected shape (paper §III): 32 is best — "it is perfectly fine to have
// thread blocks with a single warp" — 64 performs almost equally well,
// 128/256 drop slightly, and 512 drops significantly (register pressure
// per block forces spills; the batch splits into too few blocks to fill
// the machine).
#include <cstdio>

#include "bench_common.hpp"
#include "cpu/batch_factor.hpp"
#include "cpu/chunk_pipeline.hpp"
#include "kernels/counts.hpp"
#include "layout/generate.hpp"
#include "util/aligned_buffer.hpp"
#include "util/timer.hpp"

using namespace ibchol;
using namespace ibchol::bench;

namespace {

// With --measure, the chunk-size knob is swept on the CPU substrate: the
// simple interleaved layout is staged through the chunk-resident pipeline
// at each of the paper's chunk sizes (here the pack-scratch lane count).
// The expected shape differs from the GPU: the optimum is the largest
// chunk whose scratch still fits L2 (the chunk_scratch_lanes sizing rule,
// marked "*"), with oversized chunks degrading as the scratch spills.
void measured_validation(const BenchConfig& cfg) {
  std::printf("\nCPU-substrate pack chunk-size sweep (measured, batch %lld):\n",
              static_cast<long long>(cfg.measure_batch));
  std::vector<std::string> header{"n"};
  for (const int c : standard_chunk_sizes()) {
    header.push_back("c" + std::to_string(c));
  }
  TextTable table(header);
  for (const int n : {16, 32, 64}) {
    const int auto_lanes = chunk_scratch_lanes(n, sizeof(float));
    std::vector<std::string> row{std::to_string(n)};
    for (const int c : standard_chunk_sizes()) {
      const BatchLayout layout =
          BatchLayout::interleaved(n, cfg.measure_batch);
      CpuFactorOptions o;
      o.unroll = Unroll::kFull;
      o.exec = CpuExec::kAuto;
      o.chunk_size = c;
      AlignedBuffer<float> pristine(layout.size_elems());
      generate_spd_batch<float>(layout, pristine.span());
      AlignedBuffer<float> work(layout.size_elems());
      double best = 1e300;
      for (int rep = 0; rep < 5; ++rep) {
        std::copy(pristine.begin(), pristine.end(), work.begin());
        Timer t;
        (void)factor_batch_cpu<float>(layout, work.span(), o);
        best = std::min(best, t.seconds());
      }
      const double gf =
          cfg.measure_batch * nominal_flops_per_matrix(n) / best / 1e9;
      row.push_back(TextTable::num(gf, 2) + (c == auto_lanes ? "*" : ""));
    }
    table.add_row(row);
  }
  std::printf("%s", table.render().c_str());
  std::printf("(* = the chunk_scratch_lanes sizing rule's pick)\n");
}

}  // namespace

int main(int argc, char** argv) {
  const BenchConfig cfg = parse_config(argc, argv, /*default_step=*/2);
  print_header("Figure 18",
               "best chunked performance per chunk size (= block size)",
               cfg);

  ModelEvaluator eval = make_model_evaluator(cfg.noise_sigma);
  SweepOptions opt;
  opt.sizes = cfg.sizes;
  opt.batch = cfg.batch;
  opt.space.include_non_chunked = false;
  const SweepDataset ds = run_sweep(eval, opt);

  std::vector<NamedSeries> series;
  for (const int c : standard_chunk_sizes()) {
    series.push_back(reduce_best(ds, "chunk=" + std::to_string(c),
                                 [c](const SweepRecord& r) {
                                   return r.params.chunk_size == c;
                                 }));
  }

  print_series_table(series);
  print_series_chart(series, "Fig 18: best GFLOP/s per chunk size");

  // Averages across sizes for the ordering claims.
  auto avg = [&](int idx) {
    double acc = 0.0;
    for (const auto& [n, g] : series[idx].gflops_by_n) acc += g;
    return acc / series[idx].gflops_by_n.size();
  };
  const double a32 = avg(0), a64 = avg(1), a128 = avg(2), a256 = avg(3),
               a512 = avg(4);
  std::printf("\nmean best GFLOP/s: c32=%.0f c64=%.0f c128=%.0f c256=%.0f "
              "c512=%.0f\n", a32, a64, a128, a256, a512);
  std::printf("\nclaims (paper §III):\n");
  check(a32 >= a64 && a64 >= a128 && a128 >= a256 && a256 >= a512,
        "ordering 32 >= 64 >= 128 >= 256 >= 512");
  check(a64 > 0.9 * a32, "64 performs almost equally well as 32");
  check(a512 < 0.85 * a32, "512 drops significantly");

  if (cfg.measure) measured_validation(cfg);

  maybe_write_csv(cfg, series);
  maybe_write_json(cfg, "fig18_chunk_size", series);
  return 0;
}
