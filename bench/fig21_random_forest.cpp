// Figure 21: accuracy of the random-forest model — predicted vs observed
// performance over the autotuning dataset (paper §IV: 500 trees in
// regression mode, average depth ~11; the point cloud hugs the ideal
// diagonal).
#include <cstdio>

#include "autotune/analyze.hpp"
#include "bench_common.hpp"

using namespace ibchol;
using namespace ibchol::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = parse_config(argc, argv, /*default_step=*/4);
  if (cfg.noise_sigma == 0.0) cfg.noise_sigma = 0.02;
  print_header("Figure 21",
               "random-forest accuracy: predicted vs observed performance",
               cfg);

  ModelEvaluator eval = make_model_evaluator(cfg.noise_sigma);
  SweepOptions opt;
  opt.sizes = cfg.sizes;
  opt.batch = cfg.batch;
  const SweepDataset ds = run_sweep(eval, opt);
  std::printf("autotuning dataset: %zu measurements\n", ds.size());

  ForestOptions fopt;
  fopt.num_trees = cfg.trees;
  const AnalysisResult res = analyze_dataset(ds, fopt);

  // Scatter of (observed, OOB-predicted), subsampled for readability, plus
  // the ideal diagonal.
  Series cloud;
  cloud.name = "kernels (OOB prediction)";
  const std::size_t stride = std::max<std::size_t>(res.observed.size() / 400,
                                                   1);
  double lo = 1e300, hi = 0.0;
  for (std::size_t i = 0; i < res.observed.size(); i += stride) {
    cloud.x.push_back(res.observed[i]);
    cloud.y.push_back(res.predicted[i]);
    lo = std::min(lo, res.observed[i]);
    hi = std::max(hi, res.observed[i]);
  }
  Series diagonal;
  diagonal.name = "ideal (predicted = observed)";
  for (int i = 0; i <= 20; ++i) {
    diagonal.x.push_back(lo + (hi - lo) * i / 20.0);
    diagonal.y.push_back(lo + (hi - lo) * i / 20.0);
  }
  ChartOptions copt;
  copt.title = "Fig 21: predicted vs observed GFLOP/s";
  copt.x_label = "observed";
  copt.y_label = "predicted";
  copt.y_from_zero = false;
  std::printf("\n%s\n", render_scatter({cloud, diagonal}, copt).c_str());

  std::printf("forest: %d trees, average depth %.1f\n", res.num_trees,
              res.average_depth);
  std::printf("OOB MSE: %.2f   correlation: %.4f   R^2: %.4f\n", res.oob_mse,
              res.correlation, res.r_squared);

  std::printf("\nclaims (paper §IV):\n");
  check(res.correlation > 0.95,
        "predicted and observed performance are tightly correlated");
  check(res.average_depth > 6.0 && res.average_depth < 25.0,
        "tree depth in the paper's regime (paper: avg depth 11; got " +
            TextTable::num(res.average_depth, 1) + ")");
  check(res.num_trees == cfg.trees, "forest size as configured (paper: 500)");
  return 0;
}
