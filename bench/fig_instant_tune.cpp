// Instant tuning (DESIGN §14): selection time and selection quality of the
// three tuning paths, head to head on real measurements —
//  * cold exhaustive sweep: every point of the space through the
//    CpuMeasuredEvaluator (the paper's approach, hours at full scale);
//  * model-guided probing: the calibrated analytical model ranks the space
//    and only its top-K candidates are measured (InstantTuner's miss path);
//  * warm cache: the persisted winner answers from the tuning cache with
//    zero evaluator probes (InstantTuner's hit path).
//
// For each n the binary reports each path's selection wall time and the
// measured GFLOP/s of the configuration it selected; the interesting gap
// is probe-vs-sweep (the acceptance bar is within 10%) against a selection
// time two orders of magnitude smaller, with the warm path another four
// orders below that.
//
// Run with --json=<path> to write the machine-readable summary the bench
// gate consumes (scripts/check.sh --bench merges it into BENCH_cpu.json as
// "instant_summary"); --sizes=a,b,c overrides the size list. The argless
// defaults are sized to finish in seconds (check.sh runs every bench
// binary argless).
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "autotune/evaluator.hpp"
#include "autotune/space.hpp"
#include "cpu/simd/isa.hpp"
#include "kernels/counts.hpp"
#include "obs/counters.hpp"
#include "tune/host_probe.hpp"
#include "tune/instant.hpp"
#include "tune/probe_plan.hpp"
#include "util/timer.hpp"

namespace {

using namespace ibchol;

double to_gflops(int n, std::int64_t batch, double seconds) {
  return seconds <= 0.0 ? 0.0
                        : static_cast<double>(batch) *
                              nominal_flops_per_matrix(n) / seconds / 1e9;
}

// The search domain: the instant default (both layouts, both production
// executors) over a trimmed knob grid, so the *exhaustive* control stays
// benchable — the point is the ratio of the paths, not sweep scale.
SpaceOptions bench_space() {
  SpaceOptions space = tune::default_instant_space();
  space.tile_sizes = {2, 4, 8};
  space.chunk_sizes = {64, 256};
  return space;
}

struct Row {
  int n = 0;
  std::int64_t batch = 0;
  std::size_t space_points = 0;
  int probe_points = 0;
  double sweep_seconds = 0.0;  // selection time, exhaustive path
  double probe_seconds = 0.0;  // selection time, model-guided path
  double warm_seconds = 0.0;   // selection time, cache-hit path
  double sweep_gflops = 0.0;   // measured rate of each path's choice
  double probe_gflops = 0.0;
  double warm_gflops = 0.0;
  bool warm_identical = false;  // warm params bit-identical to probe's
};

void write_json(const std::string& path, const std::vector<Row>& rows,
                double calibration_seconds) {
  std::ostringstream os;
  os << "{\n  \"bench\": \"fig_instant_tune\",\n  \"simd_isa\": \""
     << to_string(resolve_simd_isa(SimdIsa::kAuto))
     << "\",\n  \"hardware_concurrency\": "
     << std::thread::hardware_concurrency()
     << ",\n  \"obs_enabled\": " << (obs::kEnabled ? "true" : "false")
     << ",\n  \"calibration_seconds\": " << calibration_seconds
     << ",\n  \"instant_summary\": [";
  bool first = true;
  for (const Row& r : rows) {
    os << (first ? "\n" : ",\n") << "    {\"n\": " << r.n
       << ", \"batch\": " << r.batch
       << ", \"space_points\": " << r.space_points
       << ", \"probe_points\": " << r.probe_points
       << ", \"sweep_seconds\": " << r.sweep_seconds
       << ", \"probe_seconds\": " << r.probe_seconds
       << ", \"warm_seconds\": " << r.warm_seconds
       << ", \"sweep_gflops\": " << r.sweep_gflops
       << ", \"probe_gflops\": " << r.probe_gflops
       << ", \"warm_gflops\": " << r.warm_gflops << ", \"probe_ratio\": "
       << (r.sweep_gflops > 0.0 ? r.probe_gflops / r.sweep_gflops : 0.0)
       << ", \"warm_identical\": " << (r.warm_identical ? "true" : "false")
       << "}";
    first = false;
  }
  os << "\n  ]\n}\n";
  std::ofstream out(path, std::ios::trunc);
  out << os.str();
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<int> sizes = {8, 16, 32};
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--json=", 0) == 0) {
      json_path = a.substr(7);
    } else if (a.rfind("--sizes=", 0) == 0) {
      sizes.clear();
      std::istringstream ss(a.substr(8));
      std::string tok;
      while (std::getline(ss, tok, ',')) sizes.push_back(std::stoi(tok));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", a.c_str());
      return 2;
    }
  }

  // Host calibration, timed once: this is the model-guided path's fixed
  // cost, paid per process rather than per size.
  Timer calib_timer;
  const tune::HostProfile profile = tune::detect_host_profile(true);
  const double calibration_seconds = calib_timer.seconds();
  const KernelModel model = tune::calibrated_kernel_model(profile);

  std::printf("== fig_instant_tune: exhaustive sweep vs model-guided probe "
              "vs warm cache (%u cores, %s)\n",
              std::thread::hardware_concurrency(),
              to_string(resolve_simd_isa(SimdIsa::kAuto)).c_str());
  std::printf("host calibration: %.3f s (l1d=%lld KiB llc=%lld KiB "
              "copy=%.1f GB/s fma=%.1f GF/s)\n",
              calibration_seconds,
              static_cast<long long>(profile.l1d_bytes / 1024),
              static_cast<long long>(profile.llc_bytes / 1024),
              profile.copy_bw_bytes / 1e9, profile.fma_gflops / 1.0);

  const std::string cache_path = "/tmp/ibchol_fig_instant_tune.jsonl";
  std::remove(cache_path.c_str());
  // Large enough that one probe runs a few ms — per-call jitter on a busy
  // host would otherwise dominate the GFLOP/s comparison at small n.
  const std::int64_t batch = 4096;
  const SpaceOptions space = bench_space();

  std::vector<Row> rows;
  for (const int n : sizes) {
    Row row;
    row.n = n;
    row.batch = batch;

    // Path 1: cold exhaustive sweep (the control).
    TuningParams sweep_params;
    {
      CpuMeasuredEvaluator eval;
      const std::vector<TuningParams> points = enumerate_space(n, space);
      row.space_points = points.size();
      Timer t;
      double best = 1e300;
      for (const TuningParams& p : points) {
        const double s = eval.seconds(n, batch, p);
        if (s < best) {
          best = s;
          sweep_params = p;
        }
      }
      row.sweep_seconds = t.seconds();
    }

    // Path 2: model-guided probing through the tuner's miss path (plans,
    // probes, persists the winner for path 3).
    TuningParams probed_params;
    {
      CpuMeasuredEvaluator eval;
      tune::InstantOptions topts;
      topts.cache_path = cache_path;
      topts.batch = batch;
      topts.space = space;
      topts.install_overrides = false;
      tune::InstantTuner tuner(eval, topts, profile);
      Timer t;
      probed_params = tuner.params_for(n);
      row.probe_seconds = t.seconds();
      const tune::ProbePlan plan =
          tune::plan_probes(model, n, batch, space, topts.top_k);
      row.probe_points = static_cast<int>(plan.candidates.size());
    }

    // Path 3: warm cache — a fresh tuner over the same file answers
    // without a single evaluator probe.
    TuningParams warm_params;
    {
      CpuMeasuredEvaluator eval;
      tune::InstantOptions topts;
      topts.cache_path = cache_path;
      topts.batch = batch;
      topts.space = space;
      topts.install_overrides = false;
      tune::InstantTuner tuner(eval, topts, profile);
      Timer t;
      warm_params = tuner.params_for(n);
      row.warm_seconds = t.seconds();
      row.warm_identical = warm_params == probed_params;
    }

    // Quality: each path's choice re-measured back to back on ONE fresh
    // evaluator with extra repetitions — separately-timed measurements
    // minutes apart would fold host drift into the comparison.
    {
      CpuMeasuredEvaluator::Options mopts;
      mopts.warmup = 2;
      mopts.reps = 5;
      CpuMeasuredEvaluator fresh(mopts);
      row.sweep_gflops =
          to_gflops(n, batch, fresh.seconds(n, batch, sweep_params));
      row.probe_gflops =
          to_gflops(n, batch, fresh.seconds(n, batch, probed_params));
      row.warm_gflops =
          to_gflops(n, batch, fresh.seconds(n, batch, warm_params));
    }

    std::printf(
        "n=%3d  sweep %6.3f s (%3zu pts, %7.2f GF/s)   probe %6.3f s "
        "(%2d pts, %7.2f GF/s)   warm %9.6f s (%7.2f GF/s)%s\n",
        n, row.sweep_seconds, row.space_points, row.sweep_gflops,
        row.probe_seconds, row.probe_points, row.probe_gflops,
        row.warm_seconds, row.warm_gflops,
        row.warm_identical ? "" : "  [warm != probe]");
    rows.push_back(row);
  }
  std::remove(cache_path.c_str());

  // The qualitative claims, reported PASS/NOTE (absolute ratios depend on
  // the host and its load; the pinned assertions live in the test suite).
  for (const Row& r : rows) {
    const double ratio =
        r.sweep_gflops > 0.0 ? r.probe_gflops / r.sweep_gflops : 0.0;
    std::printf("%s probe within 10%% of sweep at n=%d (%.2fx, %d/%zu "
                "points)\n",
                ratio >= 0.90 ? "PASS" : "NOTE", r.n, ratio, r.probe_points,
                r.space_points);
    std::printf("%s warm selection under 1 ms at n=%d (%.3f ms)\n",
                r.warm_seconds < 1e-3 ? "PASS" : "NOTE", r.n,
                r.warm_seconds * 1e3);
  }

  if (!json_path.empty()) write_json(json_path, rows, calibration_seconds);
  return 0;
}
