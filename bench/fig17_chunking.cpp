// Figure 17: best performance of the interleaved implementation with and
// without chunking.
//
// Expected shape (paper §III): chunking is clearly beneficial across the
// whole size range — the chunked layout keeps each matrix's elements close
// in memory (spatial locality at the DRAM row / TLB level) while preserving
// perfect coalescing.
#include <cstdio>

#include "bench_common.hpp"

using namespace ibchol;
using namespace ibchol::bench;

int main(int argc, char** argv) {
  const BenchConfig cfg = parse_config(argc, argv, /*default_step=*/2);
  print_header("Figure 17",
               "best interleaved performance with and without chunking",
               cfg);

  ModelEvaluator eval = make_model_evaluator(cfg.noise_sigma);
  SweepOptions opt;
  opt.sizes = cfg.sizes;
  opt.batch = cfg.batch;
  const SweepDataset ds = run_sweep(eval, opt);

  const NamedSeries chunked = reduce_best(
      ds, "chunked", [](const SweepRecord& r) { return r.params.chunked; });
  const NamedSeries simple = reduce_best(
      ds, "non_chunked",
      [](const SweepRecord& r) { return !r.params.chunked; });

  print_series_table({chunked, simple});
  print_series_chart({chunked, simple},
                     "Fig 17: chunked vs simple interleaved layout");

  bool always_better = true;
  double max_gain = 0.0;
  for (const auto& [n, g] : chunked.gflops_by_n) {
    const double s = simple.gflops_by_n.at(n);
    always_better = always_better && g > s;
    max_gain = std::max(max_gain, g / s);
  }
  std::printf("\nclaims (paper §III):\n");
  check(always_better, "chunking is beneficial at every size");
  check(max_gain > 1.25,
        "the benefit is substantial (max gain " +
            TextTable::num(max_gain, 2) + "x)");

  maybe_write_csv(cfg, {chunked, simple});
  maybe_write_json(cfg, "fig17_chunking", {chunked, simple});
  return 0;
}
