// Figure 17: best performance of the interleaved implementation with and
// without chunking.
//
// Expected shape (paper §III): chunking is clearly beneficial across the
// whole size range — the chunked layout keeps each matrix's elements close
// in memory (spatial locality at the DRAM row / TLB level) while preserving
// perfect coalescing.
#include <cstdio>

#include "bench_common.hpp"
#include "cpu/batch_factor.hpp"
#include "cpu/chunk_pipeline.hpp"
#include "kernels/counts.hpp"
#include "layout/generate.hpp"
#include "util/aligned_buffer.hpp"
#include "util/timer.hpp"

using namespace ibchol;
using namespace ibchol::bench;

namespace {

// With --measure, the chunk effect is validated on the CPU substrate. Three
// configurations per size: the natively chunked layout (chunk 64, in
// place), the simple interleaved layout staged through the chunk-resident
// pipeline's pack scratch, and the same layout factored in place with
// packing disabled (chunk_size = padded batch), i.e. column sweeps striding
// the whole batch — the CPU analogue of "without chunking".
void measured_validation(const BenchConfig& cfg) {
  std::printf("\nCPU-substrate chunk effect (measured, batch %lld):\n",
              static_cast<long long>(cfg.measure_batch));
  TextTable table(
      {"n", "chunked GF/s", "packed GF/s", "unchunked GF/s", "pack gain"});
  bool pack_helps_somewhere = false;
  for (const int n : {16, 32, 64}) {
    auto run = [&](const BatchLayout& layout, int chunk_size) {
      CpuFactorOptions o;
      o.unroll = Unroll::kFull;
      o.exec = CpuExec::kAuto;
      o.chunk_size = chunk_size;
      AlignedBuffer<float> pristine(layout.size_elems());
      generate_spd_batch<float>(layout, pristine.span());
      AlignedBuffer<float> work(layout.size_elems());
      double best = 1e300;
      for (int rep = 0; rep < 5; ++rep) {
        std::copy(pristine.begin(), pristine.end(), work.begin());
        Timer t;
        (void)factor_batch_cpu<float>(layout, work.span(), o);
        best = std::min(best, t.seconds());
      }
      return cfg.measure_batch * nominal_flops_per_matrix(n) / best / 1e9;
    };
    const BatchLayout chunked =
        BatchLayout::interleaved_chunked(n, cfg.measure_batch, 64);
    const BatchLayout simple = BatchLayout::interleaved(n, cfg.measure_batch);
    const double gc = run(chunked, 0);
    // Explicit chunk sizes pin both regimes regardless of the footprint
    // rule: the L2-sized pack scratch vs one "chunk" spanning the batch.
    const double gp = run(simple, chunk_scratch_lanes(n, sizeof(float)));
    const double gu = run(simple, static_cast<int>(simple.padded_batch()));
    pack_helps_somewhere = pack_helps_somewhere || gp > gu;
    table.add_row({std::to_string(n), TextTable::num(gc, 2),
                   TextTable::num(gp, 2), TextTable::num(gu, 2),
                   TextTable::num(gp / gu, 2)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nclaims (CPU substrate):\n");
  check(pack_helps_somewhere,
        "chunk-resident packing beats the unchunked stride at some size");
  std::printf(
      "note: packing only pays once the batch outgrows the last-level "
      "cache;\nbelow that the round trip is pure overhead, which is why "
      "automatic sizing\n(chunk_size = 0) packs only past %zu MiB (4x the "
      "detected LLC). Raise\n--measure-batch past the LLC to see the "
      "packed win.\n",
      pack_threshold_bytes() >> 20);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchConfig cfg = parse_config(argc, argv, /*default_step=*/2);
  print_header("Figure 17",
               "best interleaved performance with and without chunking",
               cfg);

  ModelEvaluator eval = make_model_evaluator(cfg.noise_sigma);
  SweepOptions opt;
  opt.sizes = cfg.sizes;
  opt.batch = cfg.batch;
  const SweepDataset ds = run_sweep(eval, opt);

  const NamedSeries chunked = reduce_best(
      ds, "chunked", [](const SweepRecord& r) { return r.params.chunked; });
  const NamedSeries simple = reduce_best(
      ds, "non_chunked",
      [](const SweepRecord& r) { return !r.params.chunked; });

  print_series_table({chunked, simple});
  print_series_chart({chunked, simple},
                     "Fig 17: chunked vs simple interleaved layout");

  bool always_better = true;
  double max_gain = 0.0;
  for (const auto& [n, g] : chunked.gflops_by_n) {
    const double s = simple.gflops_by_n.at(n);
    always_better = always_better && g > s;
    max_gain = std::max(max_gain, g / s);
  }
  std::printf("\nclaims (paper §III):\n");
  check(always_better, "chunking is beneficial at every size");
  check(max_gain > 1.25,
        "the benefit is substantial (max gain " +
            TextTable::num(max_gain, 2) + "x)");

  if (cfg.measure) measured_validation(cfg);

  maybe_write_csv(cfg, {chunked, simple});
  maybe_write_json(cfg, "fig17_chunking", {chunked, simple});
  return 0;
}
