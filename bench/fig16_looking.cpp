// Figure 16: best performance of the interleaved implementation for the
// three orders of evaluation of the outer loops (right / left / top).
//
// Expected shape (paper §III): no difference up to n≈20 (the winners there
// are fully unrolled, and scheduling is the compiler's), then the lazier
// the evaluation, the faster — right < left < top, because laziness
// minimizes memory writes while reads are comparable.
#include <cstdio>

#include "bench_common.hpp"

using namespace ibchol;
using namespace ibchol::bench;

int main(int argc, char** argv) {
  const BenchConfig cfg = parse_config(argc, argv, /*default_step=*/2);
  print_header("Figure 16",
               "best interleaved performance per looking order", cfg);

  ModelEvaluator eval = make_model_evaluator(cfg.noise_sigma);
  SweepOptions opt;
  opt.sizes = cfg.sizes;
  opt.batch = cfg.batch;
  const SweepDataset ds = run_sweep(eval, opt);

  std::vector<NamedSeries> series;
  for (const Looking looking :
       {Looking::kRight, Looking::kLeft, Looking::kTop}) {
    series.push_back(reduce_best(ds, to_string(looking),
                                 [looking](const SweepRecord& r) {
                                   return r.params.looking == looking;
                                 }));
  }

  print_series_table(series);
  print_series_chart(series, "Fig 16: best GFLOP/s per looking order");

  auto at = [&](int idx, int n) { return series[idx].gflops_by_n.at(n); };
  std::printf("\nclaims (paper §III):\n");
  check(std::abs(at(0, 12) - at(2, 12)) < 0.05 * at(2, 12),
        "no difference up to n~20 (n=12 within 5%)");
  bool ordered = true;
  for (const int n : {40, 48, 56, 64}) {
    if (!series[0].gflops_by_n.count(n)) continue;
    ordered = ordered && at(2, n) > at(1, n) && at(1, n) > at(0, n);
  }
  check(ordered,
        "past n~20: top (laziest) > left > right (fewest writes wins)");
  check(at(2, 48) > 1.1 * at(0, 48),
        "the top-vs-right gap is substantial at n=48 (>10%)");

  maybe_write_csv(cfg, series);
  maybe_write_json(cfg, "fig16_looking", series);
  return 0;
}
