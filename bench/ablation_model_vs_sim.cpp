// Ablation: analytical model vs trace-driven simulation.
//
// The repository carries two independent P100 substrates: the closed-form
// KernelModel (assumed L2 behaviour, calibrated constants) and the
// TraceSimulator (measured L2 behaviour over the kernel's real address
// stream). This ablation sweeps a variant grid through both and reports
// their agreement — per-point GFLOP/s ratios and the rank correlation of
// the induced kernel orderings. Strong agreement means the figure-level
// conclusions do not hinge on either substrate's simplifications.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "simt/trace_sim.hpp"
#include "util/stats.hpp"

using namespace ibchol;
using namespace ibchol::bench;

namespace {

double rank_correlation(std::vector<double> a, std::vector<double> b) {
  auto ranks = [](std::vector<double> v) {
    std::vector<std::size_t> idx(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(),
              [&](std::size_t x, std::size_t y) { return v[x] < v[y]; });
    std::vector<double> r(v.size());
    for (std::size_t i = 0; i < idx.size(); ++i) r[idx[i]] = static_cast<double>(i);
    return r;
  };
  const auto ra = ranks(std::move(a));
  const auto rb = ranks(std::move(b));
  return pearson(ra, rb);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchConfig cfg = parse_config(argc, argv, /*default_step=*/8);
  print_header("Ablation", "analytical cost model vs trace-driven simulator",
               cfg);

  const KernelModel model(GpuSpec::p100());
  const TraceSimulator sim(GpuSpec::p100());

  TextTable table({"n", "variants", "median sim/model", "rank corr",
                   "sim L2 hit (med)"});
  double worst_rank = 1.0;
  for (const int n : cfg.sizes) {
    SpaceOptions so;
    so.chunk_sizes = {32, 64, 256};
    so.tile_sizes = {1, 2, 4, 8};
    std::vector<double> g_model, g_sim, ratios, hits;
    for (const auto& p : enumerate_space(n, so)) {
      const double gm = model.evaluate(n, cfg.batch, p).gflops;
      const auto rs = sim.simulate(n, cfg.batch, p);
      g_model.push_back(gm);
      g_sim.push_back(rs.gflops);
      ratios.push_back(rs.gflops / gm);
      hits.push_back(rs.l2_hit_rate);
    }
    const double rc = rank_correlation(g_model, g_sim);
    worst_rank = std::min(worst_rank, rc);
    table.add_row({std::to_string(n), std::to_string(g_model.size()),
                   TextTable::num(median(ratios), 2), TextTable::num(rc, 3),
                   TextTable::num(median(hits), 3)});
  }
  std::printf("%s", table.render().c_str());

  std::printf("\nobservations:\n");
  check(worst_rank > 0.8,
        "the two substrates order the kernel space consistently (worst rank "
        "correlation " + TextTable::num(worst_rank, 3) + ")");
  std::printf(
      "  [INFO] the simulator derives L2 hit rates of a few percent for the "
      "streaming\n         kernels — the measured form of the paper's "
      "'caches only serve the purpose\n         of streaming buffers' "
      "remark. Known structural difference: the simulator\n         does "
      "not model instruction supply, so it misses the i-cache cliff that\n"
      "         retires full unrolling at large n (fig 19; analytical model "
      "only).\n");
  return 0;
}
