// Google-benchmark microbenchmarks of the measured CPU substrate: layout
// conversion, lane-block kernels by variant, whole-matrix registerized
// execution, the canonical per-matrix baseline, the interpreter vs
// specialized-executor head-to-head, and the batched solve.
//
// These are the real-hardware counterpart of the SIMT model benches: the
// interleave dimension maps to SIMD lanes, so the interleaved-vs-canonical
// gap measured here is the CPU analog of the paper's coalescing gap, and
// the interpreter-vs-specialized gap is the analog of interpreted tile
// loops vs the paper's generated fully unrolled kernels.
//
// Run with --json=<path> to skip the google-benchmark suite and instead
// write a machine-readable summary (interpreter vs specialized vs
// vectorized, canonical vs interleaved, per N) for cross-PR perf tracking
// (BENCH_*.json). --layout=chunked|interleaved selects the interleaved
// layout the summary measures (default chunked); --chunk=N sets its chunk
// size (for --layout=interleaved it sizes the pipeline's pack scratch;
// 0 = the automatic sizing rule). --prec=fp32|bf16|fp16 selects the
// reduced-precision storage lane the summary measures alongside the fp32
// columns (default bf16; fp32 disables the mixed lane) — each row then
// carries "storage_prec" and "<prec>_gflops" fields.
//
// --trace=<path> records a pipeline trace instead: the packed chunk
// pipeline (pack / factor / write-back spans per chunk) and the chunked
// in-place traversal, exported as Chrome trace_event JSON (open in
// about://tracing or https://ui.perfetto.dev) or JSONL when the path ends
// in ".jsonl". Requires a build with IBCHOL_OBS=ON (the default); see
// docs/OBSERVABILITY.md.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/batch_cholesky.hpp"
#include "cpu/batch_factor.hpp"
#include "cpu/batch_blas.hpp"
#include "cpu/batch_solve.hpp"
#include "cpu/chunk_pipeline.hpp"
#include "cpu/refine.hpp"
#include "cpu/simd/convert.hpp"
#include "cpu/simd/isa.hpp"
#include "cpu/simd/vec_exec.hpp"
#include "cpu/tile_exec.hpp"
#include "kernels/counts.hpp"
#include "layout/convert.hpp"
#include "layout/generate.hpp"
#include "obs/counters.hpp"
#include "obs/perf_counters.hpp"
#include "obs/trace.hpp"
#include "util/aligned_buffer.hpp"
#include "util/timer.hpp"

namespace {

using namespace ibchol;

constexpr std::int64_t kBatch = 4096;

void set_flops(benchmark::State& state, int n, std::int64_t batch) {
  state.counters["GFLOP/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * batch *
          nominal_flops_per_matrix(n),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}

// ------------------------------------------------------------ factor -----

void BM_FactorInterleaved(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int nb = static_cast<int>(state.range(1));
  const auto looking = static_cast<Looking>(state.range(2));
  TuningParams p;
  p.nb = nb;
  p.looking = looking;
  p.chunked = true;
  p.chunk_size = 64;
  const BatchLayout layout = BatchCholesky::make_layout(n, kBatch, p);
  const BatchCholesky chol(layout, p);
  AlignedBuffer<float> pristine(layout.size_elems());
  generate_spd_batch<float>(layout, pristine.span());
  AlignedBuffer<float> work(layout.size_elems());
  for (auto _ : state) {
    state.PauseTiming();
    std::copy(pristine.begin(), pristine.end(), work.begin());
    state.ResumeTiming();
    benchmark::DoNotOptimize(chol.factorize<float>(work.span()));
  }
  set_flops(state, n, kBatch);
}
BENCHMARK(BM_FactorInterleaved)
    ->ArgsProduct({{8, 16, 32, 48}, {1, 4, 8},
                   {static_cast<long>(Looking::kTop),
                    static_cast<long>(Looking::kRight)}})
    ->ArgNames({"n", "nb", "looking"});

void BM_FactorWholeMatrix(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  TuningParams p;
  p.unroll = Unroll::kFull;
  p.chunked = true;
  p.chunk_size = 64;
  const BatchLayout layout = BatchCholesky::make_layout(n, kBatch, p);
  const BatchCholesky chol(layout, p);
  AlignedBuffer<float> pristine(layout.size_elems());
  generate_spd_batch<float>(layout, pristine.span());
  AlignedBuffer<float> work(layout.size_elems());
  for (auto _ : state) {
    state.PauseTiming();
    std::copy(pristine.begin(), pristine.end(), work.begin());
    state.ResumeTiming();
    benchmark::DoNotOptimize(chol.factorize<float>(work.span()));
  }
  set_flops(state, n, kBatch);
}
BENCHMARK(BM_FactorWholeMatrix)->Arg(8)->Arg(16)->Arg(24)->Arg(32)
    ->ArgName("n");

void BM_FactorCanonical(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const BatchLayout layout = BatchLayout::canonical(n, kBatch);
  AlignedBuffer<float> pristine(layout.size_elems());
  generate_spd_batch<float>(layout, pristine.span());
  AlignedBuffer<float> work(layout.size_elems());
  for (auto _ : state) {
    state.PauseTiming();
    std::copy(pristine.begin(), pristine.end(), work.begin());
    state.ResumeTiming();
    benchmark::DoNotOptimize(factor_batch_cpu<float>(layout, work.span(), {}));
  }
  set_flops(state, n, kBatch);
}
BENCHMARK(BM_FactorCanonical)->Arg(8)->Arg(16)->Arg(32)->Arg(48)
    ->ArgName("n");

void BM_FactorFastMath(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  TuningParams p = recommended_params(n);
  p.math = MathMode::kFastMath;
  const BatchLayout layout = BatchCholesky::make_layout(n, kBatch, p);
  const BatchCholesky chol(layout, p);
  AlignedBuffer<float> pristine(layout.size_elems());
  generate_spd_batch<float>(layout, pristine.span());
  AlignedBuffer<float> work(layout.size_elems());
  for (auto _ : state) {
    state.PauseTiming();
    std::copy(pristine.begin(), pristine.end(), work.begin());
    state.ResumeTiming();
    benchmark::DoNotOptimize(chol.factorize<float>(work.span()));
  }
  set_flops(state, n, kBatch);
}
BENCHMARK(BM_FactorFastMath)->Arg(16)->Arg(32)->ArgName("n");

// Interpreter vs specialized vs vectorized executor, same variant: the
// dispatch-overhead head-to-head. For small n (full unrolling) this
// compares the scratch whole-matrix loop, the fused compile-time kernel,
// and the explicit-SIMD in-place kernel; for larger n it compares per-op
// switch dispatch, the bound specialized table, and the intrinsic op
// bodies.
void BM_FactorExec(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  TuningParams p = recommended_params(n);
  p.exec = state.range(1) == 2   ? CpuExec::kVectorized
           : state.range(1) == 1 ? CpuExec::kSpecialized
                                 : CpuExec::kInterpreter;
  const BatchLayout layout = BatchCholesky::make_layout(n, kBatch, p);
  const BatchCholesky chol(layout, p);
  AlignedBuffer<float> pristine(layout.size_elems());
  generate_spd_batch<float>(layout, pristine.span());
  AlignedBuffer<float> work(layout.size_elems());
  for (auto _ : state) {
    state.PauseTiming();
    std::copy(pristine.begin(), pristine.end(), work.begin());
    state.ResumeTiming();
    benchmark::DoNotOptimize(chol.factorize<float>(work.span()));
  }
  set_flops(state, n, kBatch);
}
BENCHMARK(BM_FactorExec)
    ->ArgsProduct({{4, 8, 16, 24, 32, 48, 64}, {0, 1, 2}})
    ->ArgNames({"n", "exec"});

// Mixed-precision storage lane: matrices held as bf16/fp16 16-bit words,
// widened into the fp32 pack scratch, factored by the same fp32 bodies,
// narrowed on write-back. Compare against BM_FactorExec's vectorized rows
// to see the half-traffic effect. Narrowing the pristine batch is input
// preparation and stays outside the timed region.
void BM_FactorMixed(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto prec = static_cast<StoragePrec>(state.range(1));
  TuningParams p = recommended_params(n);
  p.storage = prec;
  const BatchLayout layout = BatchCholesky::make_layout(n, kBatch, p);
  const BatchCholesky chol(layout, p);
  AlignedBuffer<float> fpristine(layout.size_elems());
  generate_spd_batch<float>(layout, fpristine.span());
  AlignedBuffer<std::uint16_t> pristine(layout.size_elems());
  narrow_row(resolve_convert_isa(), prec, fpristine.data(), pristine.data(),
             static_cast<std::int64_t>(layout.size_elems()),
             /*nt_stores=*/false);
  AlignedBuffer<std::uint16_t> work(layout.size_elems());
  for (auto _ : state) {
    state.PauseTiming();
    std::copy(pristine.begin(), pristine.end(), work.begin());
    state.ResumeTiming();
    benchmark::DoNotOptimize(chol.factorize_mixed(work.span()));
  }
  set_flops(state, n, kBatch);
}
BENCHMARK(BM_FactorMixed)
    ->ArgsProduct({{8, 16, 32, 64},
                   {static_cast<long>(StoragePrec::kBf16),
                    static_cast<long>(StoragePrec::kFp16)}})
    ->ArgNames({"n", "prec"});

// ------------------------------------------------------------ layout -----

void BM_ConvertCanonicalToChunked(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto from = BatchLayout::canonical(n, kBatch);
  const auto to = BatchLayout::interleaved_chunked(n, kBatch, 64);
  AlignedBuffer<float> src(from.size_elems());
  generate_spd_batch<float>(from, src.span());
  AlignedBuffer<float> dst(to.size_elems());
  for (auto _ : state) {
    convert_layout<float>(from, std::span<const float>(src.span()), to,
                          dst.span());
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          from.size_elems() * sizeof(float));
}
BENCHMARK(BM_ConvertCanonicalToChunked)->Arg(8)->Arg(32)->ArgName("n");

// ------------------------------------------------------------- solve -----

void BM_SolveInterleaved(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const TuningParams p = recommended_params(n);
  const BatchLayout layout = BatchCholesky::make_layout(n, kBatch, p);
  const BatchCholesky chol(layout, p);
  AlignedBuffer<float> mats(layout.size_elems());
  generate_spd_batch<float>(layout, mats.span());
  chol.factorize<float>(mats.span());
  const auto vlayout = BatchVectorLayout::matching(layout);
  AlignedBuffer<float> rhs(vlayout.size_elems());
  for (std::size_t i = 0; i < rhs.size(); ++i) rhs[i] = 1.0f;
  for (auto _ : state) {
    chol.solve<float>(std::span<const float>(mats.span()), vlayout,
                      rhs.span());
    benchmark::DoNotOptimize(rhs.data());
  }
  // 2n^2 flops per solve.
  state.counters["GFLOP/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kBatch * 2.0 * n * n,
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}
BENCHMARK(BM_SolveInterleaved)->Arg(8)->Arg(16)->Arg(32)->ArgName("n");

// --------------------------------------------------------- lane block ----

void BM_LaneBlockKernel(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int nb = static_cast<int>(state.range(1));
  const auto layout = BatchLayout::interleaved(n, kLaneBlock);
  AlignedBuffer<float> pristine(layout.size_elems());
  generate_spd_batch<float>(layout, pristine.span());
  AlignedBuffer<float> work(layout.size_elems());
  const TileProgram program = build_tile_program(n, nb, Looking::kTop);
  for (auto _ : state) {
    state.PauseTiming();
    std::copy(pristine.begin(), pristine.end(), work.begin());
    state.ResumeTiming();
    execute_program_lane_block<float>(program, MathMode::kIeee, work.data(),
                                      layout.chunk(), nullptr);
    benchmark::DoNotOptimize(work.data());
  }
  set_flops(state, n, kLaneBlock);
}
BENCHMARK(BM_LaneBlockKernel)
    ->ArgsProduct({{16, 32, 48}, {2, 8}})
    ->ArgNames({"n", "nb"});

// -------------------------------------------------------- batched BLAS ---

void BM_BatchPotrsMultiRhs(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int nrhs = static_cast<int>(state.range(1));
  const TuningParams p = recommended_params(n);
  const BatchLayout layout = BatchCholesky::make_layout(n, kBatch, p);
  const BatchCholesky chol(layout, p);
  AlignedBuffer<float> mats(layout.size_elems());
  generate_spd_batch<float>(layout, mats.span());
  chol.factorize<float>(mats.span());
  const BatchRectLayout rlayout = BatchRectLayout::matching(layout, n, nrhs);
  AlignedBuffer<float> rhs(rlayout.size_elems());
  for (std::size_t i = 0; i < rhs.size(); ++i) rhs[i] = 1.0f;
  for (auto _ : state) {
    batch_potrs<float>(layout, std::span<const float>(mats.span()), rlayout,
                       rhs.span());
    benchmark::DoNotOptimize(rhs.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kBatch * 2.0 * n * n * nrhs,
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}
BENCHMARK(BM_BatchPotrsMultiRhs)
    ->ArgsProduct({{8, 16, 32}, {1, 4}})
    ->ArgNames({"n", "nrhs"});

void BM_BatchGemm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const BatchRectLayout cl = BatchRectLayout::interleaved_chunked(
      n, n, kBatch, 64);
  AlignedBuffer<float> cs(cl.size_elems()), as(cl.size_elems()),
      bs(cl.size_elems());
  for (std::size_t i = 0; i < as.size(); ++i) {
    as[i] = 0.5f;
    bs[i] = 0.25f;
  }
  for (auto _ : state) {
    batch_gemm_nt<float>(cl, cs.span(), cl, std::span<const float>(as.span()),
                         cl, std::span<const float>(bs.span()));
    benchmark::DoNotOptimize(cs.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kBatch * 2.0 * n * n * n,
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}
BENCHMARK(BM_BatchGemm)->Arg(8)->Arg(16)->ArgName("n");

void BM_RefinedSolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const TuningParams p = recommended_params(n);
  const BatchLayout layout = BatchCholesky::make_layout(n, kBatch, p);
  AlignedBuffer<float> originals(layout.size_elems());
  SpdOptions gen;
  gen.kind = SpdKind::kControlledCondition;
  gen.condition = 1e3;
  generate_spd_batch<float>(layout, originals.span(), gen);
  AlignedBuffer<float> factors(layout.size_elems());
  std::copy(originals.begin(), originals.end(), factors.begin());
  factor_batch_cpu<float>(layout, factors.span(), {});
  const auto vlayout = BatchVectorLayout::matching(layout);
  AlignedBuffer<float> b(vlayout.size_elems()), x(vlayout.size_elems());
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = 1.0f;
  for (auto _ : state) {
    RefineResult res = refine_batch_solve(
        layout, std::span<const float>(originals.span()),
        std::span<const float>(factors.span()), vlayout,
        std::span<const float>(b.span()), x.span());
    benchmark::DoNotOptimize(res);
  }
}
BENCHMARK(BM_RefinedSolve)->Arg(16)->ArgName("n");

// ------------------------------------------------------- JSON summary ----

// Best-of-5 factorization time for one (layout, options) configuration
// (one warmup rep; best-of keeps the summary robust against the scheduling
// noise of shared hosts).
double time_factor(const BatchLayout& layout,
                   const AlignedBuffer<float>& pristine,
                   AlignedBuffer<float>& work, const CpuFactorOptions& opt) {
  const std::size_t bytes = layout.size_elems() * sizeof(float);
  double best = 1e300;
  for (int rep = 0; rep < 6; ++rep) {  // one warmup + five timed
    std::memcpy(work.data(), pristine.data(), bytes);
    Timer t;
    (void)factor_batch_cpu<float>(layout, work.span(), opt);
    const double s = t.seconds();
    if (rep > 0 && s < best) best = s;
  }
  return best;
}

// Mixed-lane counterpart: same best-of-5 protocol over a 16-bit batch.
double time_factor_mixed(const BatchLayout& layout,
                         const AlignedBuffer<std::uint16_t>& pristine,
                         AlignedBuffer<std::uint16_t>& work, StoragePrec prec,
                         const CpuFactorOptions& opt) {
  const std::size_t bytes = layout.size_elems() * sizeof(std::uint16_t);
  double best = 1e300;
  for (int rep = 0; rep < 6; ++rep) {  // one warmup + five timed
    std::memcpy(work.data(), pristine.data(), bytes);
    Timer t;
    (void)factor_batch_cpu_mixed(layout, work.span(), prec, opt);
    const double s = t.seconds();
    if (rep > 0 && s < best) best = s;
  }
  return best;
}

double to_gflops(int n, std::int64_t batch, double seconds) {
  return seconds <= 0.0 ? 0.0
                        : static_cast<double>(batch) *
                              nominal_flops_per_matrix(n) / seconds / 1e9;
}

// ------------------------------------------------------ observability ----

// Per-iteration cost a span site adds when no trace session is active,
// against an identical control loop with no span. Best-of-5 minima so
// scheduler noise cannot fake an overhead. This is the bench assertion
// behind the IBCHOL_OBS=OFF zero-overhead guarantee: with the layer
// compiled out both loops are instruction-identical (the macro expands to
// nothing), so the delta must round to zero.
template <typename F>
double best_seconds_of5(F&& fn) {
  double best = 1e300;
  for (int rep = 0; rep < 6; ++rep) {  // one warmup + five timed
    Timer t;
    fn();
    const double s = t.seconds();
    if (rep > 0 && s < best) best = s;
  }
  return best;
}

double inactive_span_overhead_ns() {
  constexpr int kIters = 1 << 22;
  const double empty = best_seconds_of5([] {
    for (int i = 0; i < kIters; ++i) {
      benchmark::DoNotOptimize(i);
    }
  });
  const double traced = best_seconds_of5([] {
    for (int i = 0; i < kIters; ++i) {
      IBCHOL_TRACE_SPAN("probe", "obs", i);
      benchmark::DoNotOptimize(i);
    }
  });
  return (traced - empty) * 1e9 / kIters;
}

// Aggregates one traced factorization into per-stage CPU seconds (sum of
// span durations by name over the "pipeline" category; sums exceed wall
// time when threads overlap — this is attribution, not elapsed time).
std::map<std::string, double> trace_stages(const BatchLayout& layout,
                                           const AlignedBuffer<float>& pristine,
                                           AlignedBuffer<float>& work,
                                           const CpuFactorOptions& opt) {
  std::map<std::string, double> stages;
  if constexpr (!obs::kEnabled) return stages;
  std::memcpy(work.data(), pristine.data(),
              layout.size_elems() * sizeof(float));
  obs::start_tracing();
  (void)factor_batch_cpu<float>(layout, work.span(), opt);
  obs::stop_tracing();
  for (const obs::TraceSpan& s : obs::collect_spans()) {
    if (std::strcmp(s.cat, "pipeline") == 0) {
      stages[s.name] += static_cast<double>(s.dur_ns) / 1e9;
    }
  }
  return stages;
}

// The --trace mode: one traced run of the packed chunk pipeline (simple
// interleaved layout with an explicit chunk, so pack / factor / write-back
// spans appear per chunk) and of the chunked in-place traversal, exported
// to `path`. Hardware counters ride along when the kernel permits them.
int run_trace_scenario(const std::string& path) {
  if constexpr (!obs::kEnabled) {
    std::fprintf(stderr,
                 "--trace requires a build with IBCHOL_OBS=ON (this binary "
                 "was compiled with the observability layer off)\n");
    return 1;
  }
  obs::HwCounters hw;
  hw.start();
  obs::start_tracing();
  for (const int n : {16, 32}) {
    CpuFactorOptions opt;
    opt.unroll = Unroll::kFull;
    opt.exec = CpuExec::kAuto;
    opt.chunk_size = 128;  // explicit chunk: the packed pipeline always packs

    const BatchLayout il = BatchLayout::interleaved(n, kBatch);
    AlignedBuffer<float> idata(il.size_elems());
    generate_spd_batch<float>(il, idata.span());
    (void)factor_batch_cpu<float>(il, idata.span(), opt);

    const BatchLayout cl = BatchLayout::interleaved_chunked(n, kBatch, 128);
    AlignedBuffer<float> cdata(cl.size_elems());
    generate_spd_batch<float>(cl, cdata.span());
    (void)factor_batch_cpu<float>(cl, cdata.span(), opt);
  }
  obs::stop_tracing();
  const obs::HwSample sample = hw.stop();
  const std::size_t spans = obs::collect_spans().size();
  if (!obs::export_trace(path)) {
    std::fprintf(stderr, "failed to write trace to %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu spans, %llu dropped)\n", path.c_str(), spans,
              static_cast<unsigned long long>(obs::dropped_spans()));
  if (sample.valid) {
    std::printf("hw counters: %llu cycles, %llu instructions (IPC %.2f), "
                "%llu LLC misses\n",
                static_cast<unsigned long long>(sample.cycles),
                static_cast<unsigned long long>(sample.instructions),
                sample.ipc(),
                static_cast<unsigned long long>(sample.llc_misses));
  } else {
    std::printf("hw counters: unavailable (perf_event denied or "
                "unsupported) — trace carries spans only\n");
  }
  return 0;
}

// Interpreter-vs-specialized-vs-vectorized and canonical-vs-interleaved
// summary across the head-to-head sizes, written as one JSON document.
// `chunked` selects the summary's interleaved layout; `chunk` its chunk
// size (for the simple interleaved layout it sizes the pipeline's pack
// scratch, 0 = automatic). `prec` adds a reduced-precision storage lane
// measured with the vec column's exact compute configuration (kFp32
// disables it).
void write_exec_summary(const std::string& path, bool chunked, int chunk,
                        StoragePrec prec) {
  // Per-site cost of an inactive span. With the layer compiled out this is
  // the zero-overhead assertion of the OFF configuration; compiled in it
  // documents the one-relaxed-load price of a quiet site.
  const double span_ns = inactive_span_overhead_ns();
  if (!obs::kEnabled && span_ns > 0.5) {
    std::fprintf(stderr,
                 "obs overhead assertion failed: IBCHOL_OBS=OFF but an "
                 "inactive span site costs %.3f ns/iter (expected ~0)\n",
                 span_ns);
    std::exit(1);
  }
  std::ostringstream os;
  os << "{\n  \"bench\": \"micro_cpu\",\n  \"batch\": " << kBatch
     << ",\n  \"simd_isa\": \""
     << to_string(resolve_simd_isa(SimdIsa::kAuto))
     << "\",\n  \"hardware_concurrency\": "
     << std::thread::hardware_concurrency()
     << ",\n  \"layout\": \"" << (chunked ? "chunked" : "interleaved")
     << "\",\n  \"storage_prec\": \"" << to_string(prec)
     << "\",\n  \"obs_enabled\": " << (obs::kEnabled ? "true" : "false")
     << ",\n  \"obs_inactive_span_ns\": " << span_ns
     << ",\n  \"summary\": [";
  bool first = true;
  for (const int n : {4, 8, 16, 24, 32, 48, 64}) {
    const TuningParams p = recommended_params(n);
    const BatchLayout il = chunked
                               ? BatchLayout::interleaved_chunked(
                                     n, kBatch, chunk > 0 ? chunk : 64)
                               : BatchLayout::interleaved(n, kBatch);
    AlignedBuffer<float> ipristine(il.size_elems());
    generate_spd_batch<float>(il, ipristine.span());
    AlignedBuffer<float> iwork(il.size_elems());

    CpuFactorOptions opt;
    opt.nb = p.effective_nb(n);
    opt.looking = p.looking;
    opt.unroll = p.unroll;
    opt.math = p.math;
    opt.chunk_size = chunked ? 0 : chunk;
    // Effective chunk residency of the run: the layout's own chunk, the
    // pack scratch the pipeline sizes for the simple interleaved layout, or
    // the whole padded batch when the footprint rule keeps it in place.
    const std::size_t il_bytes = il.size_elems() * sizeof(float);
    const int eff_chunk =
        chunked ? static_cast<int>(il.chunk())
                : (chunk > 0 ? chunk
                   : il_bytes >= pack_threshold_bytes()
                       ? chunk_scratch_lanes(n, sizeof(float))
                       : static_cast<int>(il.padded_batch()));
    opt.exec = CpuExec::kInterpreter;
    const double interp = time_factor(il, ipristine, iwork, opt);
    opt.exec = CpuExec::kSpecialized;
    const double spec = time_factor(il, ipristine, iwork, opt);
    // The vectorized column reports the executor's production strategy:
    // the in-place fused/blocked whole-matrix pipeline wherever the
    // runtime-n body reaches (exactly what CpuExec::kAuto dispatches to),
    // the tile program past that.
    opt.exec = CpuExec::kVectorized;
    const Unroll saved_unroll = opt.unroll;
    if (n <= kMaxVecWholeDim) opt.unroll = Unroll::kFull;
    const double vec = time_factor(il, ipristine, iwork, opt);
    // Per-stage attribution of one traced run of the exact vec config
    // (empty map when the obs layer is compiled out). bench_gate.py prints
    // this breakdown when a size regresses.
    const std::map<std::string, double> stages =
        trace_stages(il, ipristine, iwork, opt);
    // Mixed-precision storage lane: the vec column's exact compute
    // configuration, matrices held as 16-bit words. Narrowing the pristine
    // batch is input preparation, not measured time (padding identities
    // narrow exactly, preserving the pipeline's invariant).
    double mixed = 0.0;
    if (prec != StoragePrec::kFp32) {
      AlignedBuffer<std::uint16_t> hpristine(il.size_elems());
      narrow_row(resolve_convert_isa(), prec, ipristine.data(),
                 hpristine.data(),
                 static_cast<std::int64_t>(il.size_elems()),
                 /*nt_stores=*/false);
      AlignedBuffer<std::uint16_t> hwork(il.size_elems());
      mixed = time_factor_mixed(il, hpristine, hwork, prec, opt);
    }
    opt.unroll = saved_unroll;
    opt.exec = CpuExec::kAuto;
    const double autoex = time_factor(il, ipristine, iwork, opt);

    const BatchLayout cl = BatchLayout::canonical(n, kBatch);
    AlignedBuffer<float> cpristine(cl.size_elems());
    generate_spd_batch<float>(cl, cpristine.span());
    AlignedBuffer<float> cwork(cl.size_elems());
    opt.exec = CpuExec::kSpecialized;
    const double canonical = time_factor(cl, cpristine, cwork, opt);

    os << (first ? "\n" : ",\n") << "    {\"n\": " << n
       << ", \"chunk_size\": " << eff_chunk
       << ", \"interp_gflops\": " << to_gflops(n, kBatch, interp)
       << ", \"spec_gflops\": " << to_gflops(n, kBatch, spec)
       << ", \"vec_gflops\": " << to_gflops(n, kBatch, vec)
       << ", \"auto_gflops\": " << to_gflops(n, kBatch, autoex)
       << ", \"exec_speedup\": " << (spec > 0.0 ? interp / spec : 0.0)
       << ", \"vec_speedup\": " << (vec > 0.0 ? spec / vec : 0.0)
       << ", \"canonical_gflops\": " << to_gflops(n, kBatch, canonical)
       << ", \"interleaved_gflops\": " << to_gflops(n, kBatch, vec)
       << ", \"layout_speedup\": " << (vec > 0.0 ? canonical / vec : 0.0);
    if (prec != StoragePrec::kFp32) {
      // Field name carries the precision ("bf16_gflops"/"fp16_gflops") so
      // gate baselines from different lanes never compare against each
      // other; prec_speedup is mixed-over-vec throughput.
      os << ", \"storage_prec\": \"" << to_string(prec) << "\", \""
         << to_string(prec)
         << "_gflops\": " << to_gflops(n, kBatch, mixed)
         << ", \"prec_speedup\": " << (mixed > 0.0 ? vec / mixed : 0.0);
    }
    os << ", \"stages\": {";
    bool sfirst = true;
    for (const auto& [stage, secs] : stages) {
      os << (sfirst ? "" : ", ") << '"' << stage << "\": " << secs;
      sfirst = false;
    }
    os << "}}";
    first = false;
  }
  os << "\n  ]\n}\n";
  std::ofstream f(path);
  f << os.str();
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string trace_path;
  bool chunked = true;
  int chunk = 64;
  StoragePrec prec = StoragePrec::kBf16;
  std::vector<char*> args;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--json=", 0) == 0) {
      json_path = a.substr(7);
    } else if (a.rfind("--trace=", 0) == 0) {
      trace_path = a.substr(8);
    } else if (a.rfind("--layout=", 0) == 0) {
      const std::string l = a.substr(9);
      if (l == "chunked") {
        chunked = true;
      } else if (l == "interleaved" || l == "simple") {
        chunked = false;
        chunk = 0;  // pack-scratch sizing rule unless --chunk overrides
      } else {
        std::fprintf(stderr, "unknown --layout=%s\n", l.c_str());
        return 1;
      }
    } else if (a.rfind("--chunk=", 0) == 0) {
      chunk = std::atoi(a.c_str() + 8);
    } else if (a.rfind("--prec=", 0) == 0) {
      const std::string s = a.substr(7);
      if (s == "fp32") {
        prec = StoragePrec::kFp32;
      } else if (s == "bf16") {
        prec = StoragePrec::kBf16;
      } else if (s == "fp16") {
        prec = StoragePrec::kFp16;
      } else {
        std::fprintf(stderr, "unknown --prec=%s\n", s.c_str());
        return 1;
      }
    } else {
      args.push_back(argv[i]);
    }
  }
  if (!trace_path.empty()) {
    return run_trace_scenario(trace_path);
  }
  if (!json_path.empty()) {
    write_exec_summary(json_path, chunked, chunk, prec);
    return 0;
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
