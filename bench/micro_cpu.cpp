// Google-benchmark microbenchmarks of the measured CPU substrate: layout
// conversion, lane-block kernels by variant, whole-matrix registerized
// execution, the canonical per-matrix baseline, and the batched solve.
//
// These are the real-hardware counterpart of the SIMT model benches: the
// interleave dimension maps to SIMD lanes, so the interleaved-vs-canonical
// gap measured here is the CPU analog of the paper's coalescing gap.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/batch_cholesky.hpp"
#include "cpu/batch_factor.hpp"
#include "cpu/batch_blas.hpp"
#include "cpu/batch_solve.hpp"
#include "cpu/refine.hpp"
#include "cpu/tile_exec.hpp"
#include "kernels/counts.hpp"
#include "layout/convert.hpp"
#include "layout/generate.hpp"
#include "util/aligned_buffer.hpp"

namespace {

using namespace ibchol;

constexpr std::int64_t kBatch = 4096;

void set_flops(benchmark::State& state, int n, std::int64_t batch) {
  state.counters["GFLOP/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * batch *
          nominal_flops_per_matrix(n),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}

// ------------------------------------------------------------ factor -----

void BM_FactorInterleaved(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int nb = static_cast<int>(state.range(1));
  const auto looking = static_cast<Looking>(state.range(2));
  TuningParams p;
  p.nb = nb;
  p.looking = looking;
  p.chunked = true;
  p.chunk_size = 64;
  const BatchLayout layout = BatchCholesky::make_layout(n, kBatch, p);
  const BatchCholesky chol(layout, p);
  AlignedBuffer<float> pristine(layout.size_elems());
  generate_spd_batch<float>(layout, pristine.span());
  AlignedBuffer<float> work(layout.size_elems());
  for (auto _ : state) {
    state.PauseTiming();
    std::copy(pristine.begin(), pristine.end(), work.begin());
    state.ResumeTiming();
    benchmark::DoNotOptimize(chol.factorize<float>(work.span()));
  }
  set_flops(state, n, kBatch);
}
BENCHMARK(BM_FactorInterleaved)
    ->ArgsProduct({{8, 16, 32, 48}, {1, 4, 8},
                   {static_cast<long>(Looking::kTop),
                    static_cast<long>(Looking::kRight)}})
    ->ArgNames({"n", "nb", "looking"});

void BM_FactorWholeMatrix(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  TuningParams p;
  p.unroll = Unroll::kFull;
  p.chunked = true;
  p.chunk_size = 64;
  const BatchLayout layout = BatchCholesky::make_layout(n, kBatch, p);
  const BatchCholesky chol(layout, p);
  AlignedBuffer<float> pristine(layout.size_elems());
  generate_spd_batch<float>(layout, pristine.span());
  AlignedBuffer<float> work(layout.size_elems());
  for (auto _ : state) {
    state.PauseTiming();
    std::copy(pristine.begin(), pristine.end(), work.begin());
    state.ResumeTiming();
    benchmark::DoNotOptimize(chol.factorize<float>(work.span()));
  }
  set_flops(state, n, kBatch);
}
BENCHMARK(BM_FactorWholeMatrix)->Arg(8)->Arg(16)->Arg(24)->Arg(32)
    ->ArgName("n");

void BM_FactorCanonical(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const BatchLayout layout = BatchLayout::canonical(n, kBatch);
  AlignedBuffer<float> pristine(layout.size_elems());
  generate_spd_batch<float>(layout, pristine.span());
  AlignedBuffer<float> work(layout.size_elems());
  for (auto _ : state) {
    state.PauseTiming();
    std::copy(pristine.begin(), pristine.end(), work.begin());
    state.ResumeTiming();
    benchmark::DoNotOptimize(factor_batch_cpu<float>(layout, work.span(), {}));
  }
  set_flops(state, n, kBatch);
}
BENCHMARK(BM_FactorCanonical)->Arg(8)->Arg(16)->Arg(32)->Arg(48)
    ->ArgName("n");

void BM_FactorFastMath(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  TuningParams p = recommended_params(n);
  p.math = MathMode::kFastMath;
  const BatchLayout layout = BatchCholesky::make_layout(n, kBatch, p);
  const BatchCholesky chol(layout, p);
  AlignedBuffer<float> pristine(layout.size_elems());
  generate_spd_batch<float>(layout, pristine.span());
  AlignedBuffer<float> work(layout.size_elems());
  for (auto _ : state) {
    state.PauseTiming();
    std::copy(pristine.begin(), pristine.end(), work.begin());
    state.ResumeTiming();
    benchmark::DoNotOptimize(chol.factorize<float>(work.span()));
  }
  set_flops(state, n, kBatch);
}
BENCHMARK(BM_FactorFastMath)->Arg(16)->Arg(32)->ArgName("n");

// ------------------------------------------------------------ layout -----

void BM_ConvertCanonicalToChunked(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto from = BatchLayout::canonical(n, kBatch);
  const auto to = BatchLayout::interleaved_chunked(n, kBatch, 64);
  AlignedBuffer<float> src(from.size_elems());
  generate_spd_batch<float>(from, src.span());
  AlignedBuffer<float> dst(to.size_elems());
  for (auto _ : state) {
    convert_layout<float>(from, std::span<const float>(src.span()), to,
                          dst.span());
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          from.size_elems() * sizeof(float));
}
BENCHMARK(BM_ConvertCanonicalToChunked)->Arg(8)->Arg(32)->ArgName("n");

// ------------------------------------------------------------- solve -----

void BM_SolveInterleaved(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const TuningParams p = recommended_params(n);
  const BatchLayout layout = BatchCholesky::make_layout(n, kBatch, p);
  const BatchCholesky chol(layout, p);
  AlignedBuffer<float> mats(layout.size_elems());
  generate_spd_batch<float>(layout, mats.span());
  chol.factorize<float>(mats.span());
  const auto vlayout = BatchVectorLayout::matching(layout);
  AlignedBuffer<float> rhs(vlayout.size_elems());
  for (std::size_t i = 0; i < rhs.size(); ++i) rhs[i] = 1.0f;
  for (auto _ : state) {
    chol.solve<float>(std::span<const float>(mats.span()), vlayout,
                      rhs.span());
    benchmark::DoNotOptimize(rhs.data());
  }
  // 2n^2 flops per solve.
  state.counters["GFLOP/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kBatch * 2.0 * n * n,
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}
BENCHMARK(BM_SolveInterleaved)->Arg(8)->Arg(16)->Arg(32)->ArgName("n");

// --------------------------------------------------------- lane block ----

void BM_LaneBlockKernel(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int nb = static_cast<int>(state.range(1));
  const auto layout = BatchLayout::interleaved(n, kLaneBlock);
  AlignedBuffer<float> pristine(layout.size_elems());
  generate_spd_batch<float>(layout, pristine.span());
  AlignedBuffer<float> work(layout.size_elems());
  const TileProgram program = build_tile_program(n, nb, Looking::kTop);
  for (auto _ : state) {
    state.PauseTiming();
    std::copy(pristine.begin(), pristine.end(), work.begin());
    state.ResumeTiming();
    execute_program_lane_block<float>(program, MathMode::kIeee, work.data(),
                                      layout.chunk(), nullptr);
    benchmark::DoNotOptimize(work.data());
  }
  set_flops(state, n, kLaneBlock);
}
BENCHMARK(BM_LaneBlockKernel)
    ->ArgsProduct({{16, 32, 48}, {2, 8}})
    ->ArgNames({"n", "nb"});

// -------------------------------------------------------- batched BLAS ---

void BM_BatchPotrsMultiRhs(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int nrhs = static_cast<int>(state.range(1));
  const TuningParams p = recommended_params(n);
  const BatchLayout layout = BatchCholesky::make_layout(n, kBatch, p);
  const BatchCholesky chol(layout, p);
  AlignedBuffer<float> mats(layout.size_elems());
  generate_spd_batch<float>(layout, mats.span());
  chol.factorize<float>(mats.span());
  const BatchRectLayout rlayout = BatchRectLayout::matching(layout, n, nrhs);
  AlignedBuffer<float> rhs(rlayout.size_elems());
  for (std::size_t i = 0; i < rhs.size(); ++i) rhs[i] = 1.0f;
  for (auto _ : state) {
    batch_potrs<float>(layout, std::span<const float>(mats.span()), rlayout,
                       rhs.span());
    benchmark::DoNotOptimize(rhs.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kBatch * 2.0 * n * n * nrhs,
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}
BENCHMARK(BM_BatchPotrsMultiRhs)
    ->ArgsProduct({{8, 16, 32}, {1, 4}})
    ->ArgNames({"n", "nrhs"});

void BM_BatchGemm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const BatchRectLayout cl = BatchRectLayout::interleaved_chunked(
      n, n, kBatch, 64);
  AlignedBuffer<float> cs(cl.size_elems()), as(cl.size_elems()),
      bs(cl.size_elems());
  for (std::size_t i = 0; i < as.size(); ++i) {
    as[i] = 0.5f;
    bs[i] = 0.25f;
  }
  for (auto _ : state) {
    batch_gemm_nt<float>(cl, cs.span(), cl, std::span<const float>(as.span()),
                         cl, std::span<const float>(bs.span()));
    benchmark::DoNotOptimize(cs.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kBatch * 2.0 * n * n * n,
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}
BENCHMARK(BM_BatchGemm)->Arg(8)->Arg(16)->ArgName("n");

void BM_RefinedSolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const TuningParams p = recommended_params(n);
  const BatchLayout layout = BatchCholesky::make_layout(n, kBatch, p);
  AlignedBuffer<float> originals(layout.size_elems());
  SpdOptions gen;
  gen.kind = SpdKind::kControlledCondition;
  gen.condition = 1e3;
  generate_spd_batch<float>(layout, originals.span(), gen);
  AlignedBuffer<float> factors(layout.size_elems());
  std::copy(originals.begin(), originals.end(), factors.begin());
  factor_batch_cpu<float>(layout, factors.span(), {});
  const auto vlayout = BatchVectorLayout::matching(layout);
  AlignedBuffer<float> b(vlayout.size_elems()), x(vlayout.size_elems());
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = 1.0f;
  for (auto _ : state) {
    RefineResult res = refine_batch_solve(
        layout, std::span<const float>(originals.span()),
        std::span<const float>(factors.span()), vlayout,
        std::span<const float>(b.span()), x.span());
    benchmark::DoNotOptimize(res);
  }
}
BENCHMARK(BM_RefinedSolve)->Arg(16)->ArgName("n");

}  // namespace

BENCHMARK_MAIN();
