// Figure 20: every kernel variant for n = 24 and n = 48 with chunk size 64,
// binned by tile size n_b — the paper's "no universal winner" figure.
//
// Expected findings (paper §III): at n = 24 the chunked fully-unrolled
// kernels win; at n = 48 they are overtaken by the top-looking partially
// unrolled kernels; the non-chunked fully-unrolled kernels are consistently
// the worst; chunked beats its non-chunked counterpart in general.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"

using namespace ibchol;
using namespace ibchol::bench;

namespace {

struct Point {
  TuningParams params;
  double gflops = 0.0;
};

std::vector<Point> all_kernels(ModelEvaluator& eval, int n,
                               std::int64_t batch) {
  SpaceOptions so;
  so.chunk_sizes = {64};  // the figure fixes chunk 64
  std::vector<Point> points;
  for (const auto& p : enumerate_space(n, so)) {
    points.push_back({p, eval.gflops(n, batch, p)});
  }
  return points;
}

std::string category(const TuningParams& p) {
  return std::string(p.chunked ? "chunked" : "simple") + "/" +
         to_string(p.unroll) + "/" + to_string(p.looking);
}

void show(int n, const std::vector<Point>& points) {
  std::printf("\n--- all kernels, n = %d, chunk 64 "
              "(%zu variants) ---\n", n, points.size());

  // Scatter: x = nb, series by (chunked, unroll).
  std::vector<Series> scatter(4);
  scatter[0].name = "chunked/full";
  scatter[1].name = "chunked/partial";
  scatter[2].name = "simple/full";
  scatter[3].name = "simple/partial";
  for (const auto& pt : points) {
    const int idx = (pt.params.chunked ? 0 : 2) +
                    (pt.params.unroll == Unroll::kPartial ? 1 : 0);
    scatter[idx].x.push_back(pt.params.nb);
    scatter[idx].y.push_back(pt.gflops);
  }
  ChartOptions opt;
  opt.title = "Fig 20 (n=" + std::to_string(n) + "): GFLOP/s by tile size";
  opt.x_label = "tile size nb";
  std::printf("%s\n", render_scatter(scatter, opt).c_str());

  // Top five kernels.
  std::vector<Point> sorted = points;
  std::sort(sorted.begin(), sorted.end(),
            [](const Point& a, const Point& b) { return a.gflops > b.gflops; });
  TextTable table({"rank", "GF/s", "nb", "category"});
  for (int i = 0; i < 5 && i < static_cast<int>(sorted.size()); ++i) {
    table.add_row({std::to_string(i + 1), TextTable::num(sorted[i].gflops, 1),
                   std::to_string(sorted[i].params.nb),
                   category(sorted[i].params)});
  }
  std::printf("top kernels:\n%s", table.render().c_str());
}

double best_where(const std::vector<Point>& pts,
                  const std::function<bool(const TuningParams&)>& f) {
  double best = 0.0;
  for (const auto& p : pts) {
    if (f(p.params)) best = std::max(best, p.gflops);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchConfig cfg = parse_config(argc, argv, /*default_step=*/2);
  print_header("Figure 20", "all kernels for n = 24 and n = 48, chunk 64",
               cfg);

  ModelEvaluator eval = make_model_evaluator(cfg.noise_sigma);
  const auto p24 = all_kernels(eval, 24, cfg.batch);
  const auto p48 = all_kernels(eval, 48, cfg.batch);
  show(24, p24);
  show(48, p48);

  const auto chunked_full = [](const TuningParams& p) {
    return p.chunked && p.unroll == Unroll::kFull;
  };
  const auto top_partial = [](const TuningParams& p) {
    return p.chunked && p.unroll == Unroll::kPartial &&
           p.looking == Looking::kTop;
  };
  const auto simple_full = [](const TuningParams& p) {
    return !p.chunked && p.unroll == Unroll::kFull;
  };

  std::printf("\nclaims (paper §III):\n");
  check(best_where(p24, chunked_full) >=
            best_where(p24, [&](const TuningParams& p) {
              return !chunked_full(p);
            }),
        "n=24: the chunked fully-unrolled versions are best");
  check(best_where(p48, top_partial) > best_where(p48, chunked_full),
        "n=48: top-looking partially-unrolled overtakes full unrolling");
  // Non-chunked fully-unrolled are consistently the worst performers. The
  // robust statement in our model is at n=48 where full unrolling has also
  // lost its register-promotion advantage; at n=24 promoted non-chunked
  // kernels still ride their minimal traffic (see EXPERIMENTS.md).
  {
    const double sf = best_where(p48, simple_full);
    const double sp = best_where(p48, [](const TuningParams& p) {
      return !p.chunked && p.unroll == Unroll::kPartial;
    });
    const double cf = best_where(p48, [](const TuningParams& p) {
      return p.chunked && p.unroll == Unroll::kFull;
    });
    const double cp = best_where(p48, [](const TuningParams& p) {
      return p.chunked && p.unroll == Unroll::kPartial;
    });
    // The two non-chunked categories can land within noise of each other;
    // accept a statistical tie with non-chunked/partial, but require a
    // clear gap to both chunked categories.
    check(sf < sp * 1.03 && sf < 0.9 * cf && sf < 0.9 * cp,
          "n=48: non-chunked fully-unrolled sits at the bottom "
          "(best " + TextTable::num(sf, 0) + " vs " + TextTable::num(sp, 0) +
          "/" + TextTable::num(cf, 0) + "/" + TextTable::num(cp, 0) + ")");
  }
  // Chunked generally beats its non-chunked counterpart.
  int wins = 0, total = 0;
  for (const auto& pt : p48) {
    if (!pt.params.chunked) continue;
    for (const auto& other : p48) {
      if (other.params.chunked) continue;
      TuningParams a = pt.params;
      TuningParams b = other.params;
      b.chunked = true;
      b.chunk_size = a.chunk_size;
      if (a == b) {
        ++total;
        if (pt.gflops > other.gflops) ++wins;
      }
    }
  }
  check(total > 0 && wins == total,
        "n=48: every chunked kernel beats its non-chunked counterpart (" +
            std::to_string(wins) + "/" + std::to_string(total) + ")");
  return 0;
}
