// Figure 15: best performance of the interleaved implementation for
// different tiling factors n_b = 1…8.
//
// Expected shape (paper §III): below n≈20 tiling makes no difference (the
// winning kernels are fully unrolled and register-resident); between 20 and
// 40 the register promotion deteriorates; past 40 n_b = 1 collapses to a
// memory-bound floor while larger tiles recover performance, leveling off
// around n_b = 8.
#include <cstdio>

#include "bench_common.hpp"

using namespace ibchol;
using namespace ibchol::bench;

int main(int argc, char** argv) {
  const BenchConfig cfg = parse_config(argc, argv, /*default_step=*/2);
  print_header("Figure 15",
               "best interleaved performance per tiling factor n_b", cfg);

  ModelEvaluator eval = make_model_evaluator(cfg.noise_sigma);
  SweepOptions opt;
  opt.sizes = cfg.sizes;
  opt.batch = cfg.batch;
  const SweepDataset ds = run_sweep(eval, opt);

  std::vector<NamedSeries> series;
  for (const int nb : standard_tile_sizes()) {
    series.push_back(reduce_best(ds, "nb=" + std::to_string(nb),
                                 [nb](const SweepRecord& r) {
                                   return r.params.nb == nb;
                                 }));
  }

  print_series_table(series);
  // Chart a readable subset.
  print_series_chart({series[0], series[1], series[3], series[7]},
                     "Fig 15: best GFLOP/s per tiling factor (nb=1,2,4,8)");

  auto at = [&](int nb, int n) {
    return series[nb - 1].gflops_by_n.count(n)
               ? series[nb - 1].gflops_by_n.at(n)
               : 0.0;
  };
  std::printf("\nclaims (paper §III):\n");
  check(std::abs(at(1, 12) - at(8, 12)) < 0.08 * at(8, 12),
        "below n~20 tiling makes no difference (n=12: nb=1 within 8% of "
        "nb=8)");
  check(at(8, 48) > 2.0 * at(1, 48),
        "past n~40, nb=1 is memory bound and collapses (n=48: nb=8 > 2x "
        "nb=1)");
  check(at(8, 48) > at(4, 48) && at(4, 48) > at(2, 48),
        "performance increases with tile size at n=48");
  check(std::abs(at(8, 56) - at(7, 56)) < 0.15 * at(8, 56),
        "gains level off around nb~8 (nb=7 within 15% of nb=8 at n=56)");

  maybe_write_csv(cfg, series);
  maybe_write_json(cfg, "fig15_tiling", series);
  return 0;
}
