// Figure 14: speedup of the interleaved implementation over the
// traditional implementation (MAGMA 2.2.0 in the paper; here the
// traditional one-block-per-matrix canonical-layout kernel model, and with
// --measure the per-matrix canonical CPU path).
#include <algorithm>
#include <cstdio>

#include "baseline/traditional_model.hpp"
#include "bench_common.hpp"
#include "core/batch_cholesky.hpp"
#include "cpu/batch_factor.hpp"
#include "kernels/counts.hpp"
#include "layout/generate.hpp"
#include "util/aligned_buffer.hpp"
#include "util/timer.hpp"

using namespace ibchol;
using namespace ibchol::bench;

namespace {

void measured_validation(const BenchConfig& cfg) {
  std::printf(
      "\nCPU-substrate validation (measured, batch %lld): interleaved SIMD "
      "vs per-matrix canonical\n",
      static_cast<long long>(cfg.measure_batch));
  TextTable table({"n", "interleaved GF/s", "canonical GF/s", "speedup"});
  for (const int n : {4, 8, 16, 32}) {
    // Interleaved: recommended kernel.
    const TuningParams p = recommended_params(n);
    const BatchLayout il = BatchCholesky::make_layout(n, cfg.measure_batch, p);
    const BatchCholesky chol(il, p);
    AlignedBuffer<float> ip(il.size_elems());
    generate_spd_batch<float>(il, ip.span());
    AlignedBuffer<float> iw(il.size_elems());
    double t_inter = 1e300;
    for (int rep = 0; rep < 5; ++rep) {
      std::copy(ip.begin(), ip.end(), iw.begin());
      Timer t;
      (void)chol.factorize<float>(iw.span());
      t_inter = std::min(t_inter, t.seconds());
    }
    // Canonical: per-matrix blocked reference, parallel across the batch.
    const BatchLayout cl = BatchLayout::canonical(n, cfg.measure_batch);
    AlignedBuffer<float> cp(cl.size_elems());
    generate_spd_batch<float>(cl, cp.span());
    AlignedBuffer<float> cw(cl.size_elems());
    double t_canon = 1e300;
    for (int rep = 0; rep < 5; ++rep) {
      std::copy(cp.begin(), cp.end(), cw.begin());
      Timer t;
      (void)factor_batch_cpu<float>(cl, cw.span(), {});
      t_canon = std::min(t_canon, t.seconds());
    }
    const double flops = cfg.measure_batch * nominal_flops_per_matrix(n);
    table.add_row({std::to_string(n), TextTable::num(flops / t_inter / 1e9, 2),
                   TextTable::num(flops / t_canon / 1e9, 2),
                   TextTable::num(t_canon / t_inter, 2)});
  }
  std::printf("%s", table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const BenchConfig cfg = parse_config(argc, argv, /*default_step=*/2);
  print_header("Figure 14",
               "speedup of the interleaved implementation over the "
               "traditional (MAGMA-like) implementation",
               cfg);

  ModelEvaluator eval = make_model_evaluator(cfg.noise_sigma);
  SweepOptions opt;
  opt.sizes = cfg.sizes;
  opt.batch = cfg.batch;
  const SweepDataset ds = run_sweep(eval, opt);
  const NamedSeries best = reduce_best(ds, "interleaved_best", nullptr);

  const TraditionalModel traditional(GpuSpec::p100());
  NamedSeries magma{"traditional", {}};
  NamedSeries speedup{"speedup", {}};
  for (const auto& [n, g] : best.gflops_by_n) {
    magma.gflops_by_n[n] = traditional.evaluate(n, cfg.batch).gflops;
    speedup.gflops_by_n[n] = g / magma.gflops_by_n[n];
  }

  print_series_table({best, magma, speedup});
  print_series_chart({speedup}, "Fig 14: speedup over the traditional code");

  const double sp_small = speedup.gflops_by_n.begin()->second;
  const double sp_large = speedup.gflops_by_n.rbegin()->second;
  double sp_max = 0.0;
  for (const auto& [n, s] : speedup.gflops_by_n) sp_max = std::max(sp_max, s);
  std::printf("\nclaims (paper §III):\n");
  check(sp_max > 3.0,
        "several-fold speedup for very small matrices (max " +
            TextTable::num(sp_max, 1) + "x)");
  check(sp_small > sp_large, "speedup declines as matrices grow");
  check(sp_large < 1.25,
        "traditional implementation catches up / overtakes at the largest "
        "sizes (speedup " + TextTable::num(sp_large, 2) + "x at n=64)");

  maybe_write_csv(cfg, {best, magma, speedup});
  maybe_write_json(cfg, "fig14_speedup_over_magma", {best, magma, speedup});
  if (cfg.measure) measured_validation(cfg);
  return 0;
}
