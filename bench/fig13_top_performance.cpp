// Figure 13: top performance of the interleaved implementation, with IEEE
// compliant arithmetic and with --use_fast_math, batch 16,384 on a P100.
//
// Reproduces the best-over-all-tuning-parameters curve for both math modes
// and checks the paper's headline numbers qualitatively: ~600 GFLOP/s IEEE
// and approaching 800 GFLOP/s fast-math for small matrices. With --measure
// the measured CPU substrate runs the recommended configuration per size to
// confirm the fast-vs-IEEE ordering on real hardware.
#include <cstdio>

#include "bench_common.hpp"
#include "core/batch_cholesky.hpp"
#include "kernels/counts.hpp"
#include "layout/generate.hpp"
#include "util/aligned_buffer.hpp"
#include "util/timer.hpp"

using namespace ibchol;
using namespace ibchol::bench;

namespace {

void measured_validation(const BenchConfig& cfg) {
  std::printf("\nCPU-substrate validation (measured, batch %lld):\n",
              static_cast<long long>(cfg.measure_batch));
  TextTable table({"n", "ieee GF/s", "fast GF/s", "fast/ieee"});
  for (const int n : {8, 16, 32}) {
    double gf[2] = {0.0, 0.0};
    for (const MathMode math : {MathMode::kIeee, MathMode::kFastMath}) {
      TuningParams p = recommended_params(n);
      p.math = math;
      const BatchLayout layout =
          BatchCholesky::make_layout(n, cfg.measure_batch, p);
      const BatchCholesky chol(layout, p);
      AlignedBuffer<float> pristine(layout.size_elems());
      generate_spd_batch<float>(layout, pristine.span());
      AlignedBuffer<float> work(layout.size_elems());
      double best = 1e300;
      for (int rep = 0; rep < 5; ++rep) {
        std::copy(pristine.begin(), pristine.end(), work.begin());
        Timer t;
        (void)chol.factorize<float>(work.span());
        best = std::min(best, t.seconds());
      }
      gf[math == MathMode::kFastMath] =
          cfg.measure_batch * nominal_flops_per_matrix(n) / best / 1e9;
    }
    table.add_row({std::to_string(n), TextTable::num(gf[0], 2),
                   TextTable::num(gf[1], 2),
                   TextTable::num(gf[1] / gf[0], 2)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "note: the fast-math gap is a GPU special-function-unit effect; x86 "
      "hardware\nsqrt/div are already pipelined, so fast/ieee ~ 1.0 here is "
      "expected (see EXPERIMENTS.md).\n");
}

}  // namespace

int main(int argc, char** argv) {
  const BenchConfig cfg = parse_config(argc, argv, /*default_step=*/2);
  print_header("Figure 13",
               "top performance of the interleaved implementation, IEEE vs "
               "--use_fast_math",
               cfg);

  ModelEvaluator eval = make_model_evaluator(cfg.noise_sigma);
  SweepOptions opt;
  opt.sizes = cfg.sizes;
  opt.batch = cfg.batch;
  opt.space.include_fast_math = true;
  const SweepDataset ds = run_sweep(eval, opt);

  const NamedSeries ieee = reduce_best(ds, "ieee", [](const SweepRecord& r) {
    return r.params.math == MathMode::kIeee;
  });
  const NamedSeries fast = reduce_best(ds, "fast_math",
                                       [](const SweepRecord& r) {
                                         return r.params.math ==
                                                MathMode::kFastMath;
                                       });

  print_series_table({ieee, fast});
  print_series_chart({ieee, fast},
                     "Fig 13: best interleaved GFLOP/s vs matrix size");

  // Qualitative checks from the paper's text.
  double peak_ieee = 0.0, peak_fast = 0.0, max_ratio = 0.0;
  bool fast_never_worse = true;
  for (const auto& [n, g] : ieee.gflops_by_n) {
    peak_ieee = std::max(peak_ieee, g);
    const double f = fast.gflops_by_n.at(n);
    peak_fast = std::max(peak_fast, f);
    max_ratio = std::max(max_ratio, f / g);
    if (f < g * 0.999) fast_never_worse = false;
  }
  std::printf("\nclaims (paper §III):\n");
  check(peak_ieee > 450 && peak_ieee < 800,
        "IEEE peak in the ~600 GFLOP/s regime (got " +
            TextTable::num(peak_ieee, 0) + ")");
  check(peak_fast > 600 && peak_fast < 1000,
        "fast-math peak approaching ~800 GFLOP/s (got " +
            TextTable::num(peak_fast, 0) + ")");
  check(fast_never_worse, "fast math never slower than IEEE");
  check(max_ratio > 1.15,
        "fast math gives a substantial advantage where the special-function "
        "sequences dominate (max gain " + TextTable::num(max_ratio, 2) + "x)");

  maybe_write_csv(cfg, {ieee, fast});
  maybe_write_json(cfg, "fig13_top_performance", {ieee, fast});
  if (cfg.measure) measured_validation(cfg);
  return 0;
}
