// Supplementary experiment: what does resilience cost?
//
// factorize_recover adds screening (a finiteness scan of the factored
// triangle), a diagonal snapshot, and — only when matrices actually fail —
// shifted retry passes over a compact sub-batch. This bench measures that
// overhead on the CPU substrate: clean batches should pay a small constant
// tax, and a faulted batch should pay roughly proportional to the failure
// rate, never a full re-factorization per attempt of the whole batch.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "core/batch_cholesky.hpp"
#include "kernels/counts.hpp"
#include "layout/generate.hpp"
#include "util/aligned_buffer.hpp"
#include "util/fault_inject.hpp"
#include "util/timer.hpp"

using namespace ibchol;
using namespace ibchol::bench;

namespace {

double best_of(int reps, const std::function<double()>& run) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) best = std::min(best, run());
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchConfig cfg = parse_config(argc, argv);
  print_header("Supplementary",
               "overhead of factorize_recover vs plain factorize", cfg);

  const std::int64_t batch = cfg.measure_batch;
  TextTable table({"n", "plain ms", "recover ms (clean)", "clean tax",
                   "recover ms (2% faults)", "recovered"});

  double worst_clean_tax = 0.0;
  for (const int n : {8, 16, 32}) {
    const TuningParams params = recommended_params(n);
    const BatchLayout layout = BatchCholesky::make_layout(n, batch, params);
    const BatchCholesky chol(layout, params);

    AlignedBuffer<float> pristine(layout.size_elems());
    generate_spd_batch<float>(layout, pristine.span());
    FaultPlanOptions fopt;
    fopt.fault_rate = 0.02;
    const std::vector<MatrixFault> plan = plan_faults(batch, n, fopt);

    AlignedBuffer<float> work(layout.size_elems());
    std::vector<std::int32_t> info(static_cast<std::size_t>(batch));
    auto reload = [&](bool faulted) {
      std::copy(pristine.begin(), pristine.end(), work.begin());
      if (faulted) inject_faults<float>(layout, work.span(), plan);
    };

    const double plain = best_of(5, [&] {
      reload(false);
      Timer t;
      (void)chol.factorize<float>(work.span(), info);
      return t.seconds();
    });
    const double clean = best_of(5, [&] {
      reload(false);
      Timer t;
      (void)chol.factorize_recover<float>(work.span(), {}, info);
      return t.seconds();
    });
    std::int64_t recovered = 0;
    const double faulted = best_of(5, [&] {
      reload(true);
      Timer t;
      const RecoveryReport rep =
          chol.factorize_recover<float>(work.span(), {}, info);
      recovered = rep.recovered;
      return t.seconds();
    });

    const double tax = clean / plain - 1.0;
    worst_clean_tax = std::max(worst_clean_tax, tax);
    table.add_row({std::to_string(n), TextTable::num(plain * 1e3, 3),
                   TextTable::num(clean * 1e3, 3),
                   TextTable::num(tax * 100.0, 1) + "%",
                   TextTable::num(faulted * 1e3, 3),
                   std::to_string(recovered)});
  }
  std::printf("%s", table.render().c_str());

  std::printf("\nclaims:\n");
  check(worst_clean_tax < 1.0,
        "clean-batch resilience tax stays below the cost of a second "
        "factorization pass");
  return 0;
}
