// Tests for the tiled task-parallel large-N Cholesky path: tile layout
// round trips, DAG structural invariants, randomized-schedule dependence
// stress, the bit-identity contract (parallel executor vs single-threaded
// blocked reference under distinct stealing schedules), the n ≤ 64 overlap
// against the interpreter oracle, failure-report determinism, and the
// facade routing at n > 64.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "core/batch_cholesky.hpp"
#include "cpu/chunk_pipeline.hpp"
#include "cpu/reference.hpp"
#include "obs/counters.hpp"
#include "svc/batch_service.hpp"
#include "tiled/dag.hpp"
#include "tiled/reference.hpp"
#include "tiled/tile_layout.hpp"
#include "util/error.hpp"

namespace ibchol {
namespace {

// Dense column-major SPD matrix: A = B·Bᵀ + n·I with B uniform in [0,1).
std::vector<float> make_spd(int n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(0.0f, 1.0f);
  std::vector<float> b(static_cast<std::size_t>(n) * n);
  for (auto& v : b) v = dist(rng);
  std::vector<float> a(static_cast<std::size_t>(n) * n, 0.0f);
  for (int j = 0; j < n; ++j) {
    for (int i = j; i < n; ++i) {
      float s = i == j ? static_cast<float>(n) : 0.0f;
      for (int k = 0; k < n; ++k) s += b[k * n + i] * b[k * n + j];
      a[j * n + i] = s;
      a[i * n + j] = s;
    }
  }
  return a;
}

// ---------------------------------------------------------- TileLayout ----

TEST(TileLayout, DimsBlocksAndSizes) {
  const tiled::TileLayout tl(100, 32);  // nt = 4, last tile 4 wide
  EXPECT_EQ(tl.nt(), 4);
  EXPECT_EQ(tl.dim(0), 32);
  EXPECT_EQ(tl.dim(3), 4);
  EXPECT_EQ(tl.num_blocks(), 10);
  EXPECT_EQ(tl.size_elems(), 10 * 32 * 32);
  // Column-of-tiles-major block order, packed lower.
  EXPECT_EQ(tl.block(0, 0), 0);
  EXPECT_EQ(tl.block(3, 0), 3);
  EXPECT_EQ(tl.block(1, 1), 4);
  EXPECT_EQ(tl.block(3, 3), 9);
}

TEST(TileLayout, NbClampedToN) {
  const tiled::TileLayout tl(24, 128);
  EXPECT_EQ(tl.nb(), 24);
  EXPECT_EQ(tl.nt(), 1);
}

TEST(TileLayout, PackUnpackRoundTripsLowerTriangle) {
  for (const auto& [n, nb] : {std::pair{96, 32}, {100, 32}, {64, 48}}) {
    const tiled::TileLayout tl(n, nb);
    const std::vector<float> a = make_spd(n, 7);
    std::vector<float> tiles(static_cast<std::size_t>(tl.size_elems()),
                             -1.0f);
    std::vector<float> out(static_cast<std::size_t>(n) * n, 0.0f);
    for (int J = 0; J < tl.nt(); ++J) {
      tiled::pack_tile_column(tl, J, tiles.data(), [&](int i, int j) {
        return a[static_cast<std::size_t>(j) * n + i];
      });
    }
    for (int J = 0; J < tl.nt(); ++J) {
      tiled::unpack_tile_column(tl, J, tiles.data(),
                                [&](int i, int j, float v) {
                                  out[static_cast<std::size_t>(j) * n + i] = v;
                                });
    }
    for (int j = 0; j < n; ++j) {
      for (int i = j; i < n; ++i) {
        EXPECT_EQ(out[static_cast<std::size_t>(j) * n + i],
                  a[static_cast<std::size_t>(j) * n + i])
            << "n=" << n << " nb=" << nb << " (" << i << "," << j << ")";
      }
    }
  }
}

// ------------------------------------------------------------- DagSpec ----

// Closed-form task count: nt packs + nt unpacks + nt POTRFs + per-step
// TRSM/SYRK (nt-1-k each) + GEMMs (m(m-1)/2 at step k, m = nt-1-k).
std::int64_t expected_tasks(int nt) {
  std::int64_t total = 3 * nt;
  for (int k = 0; k < nt; ++k) {
    const std::int64_t m = nt - 1 - k;
    total += 2 * m + m * (m - 1) / 2;
  }
  return total;
}

TEST(DagSpec, TaskCountsAndDecodeRoundTrip) {
  for (const auto& [n, nb, la] :
       {std::tuple{96, 32, 2}, {100, 32, 1}, {256, 32, 100}, {64, 16, 2}}) {
    const tiled::DagSpec spec = tiled::build_dag_spec(n, nb, la);
    EXPECT_EQ(spec.tasks_per_matrix, expected_tasks(spec.nt));
    EXPECT_EQ(spec.rest_per_matrix, spec.tasks_per_matrix - spec.nt);
    // Every id decodes, and re-encoding the decoded task returns the id.
    for (std::int64_t id = 0; id < spec.tasks_per_matrix; ++id) {
      const tiled::TileTask t = spec.decode(id);
      std::int64_t back = -1;
      switch (t.kind) {
        case tiled::TaskKind::kPack: back = spec.pack_id(t.k); break;
        case tiled::TaskKind::kPotrf: back = spec.potrf_id(t.k); break;
        case tiled::TaskKind::kTrsm: back = spec.trsm_id(t.k, t.i); break;
        case tiled::TaskKind::kSyrk: back = spec.syrk_id(t.k, t.i); break;
        case tiled::TaskKind::kGemm:
          back = spec.gemm_id(t.k, t.i, t.j);
          break;
        case tiled::TaskKind::kUnpack: back = spec.unpack_id(t.k); break;
      }
      ASSERT_EQ(back, id) << "n=" << n << " nb=" << nb;
    }
  }
}

TEST(DagSpec, InDegreesMatchEdgeEnumeration) {
  const tiled::DagSpec spec = tiled::build_dag_spec(160, 32, 2);
  std::vector<std::int32_t> indeg(
      static_cast<std::size_t>(spec.rest_per_matrix), 0);
  for (std::int64_t id = 0; id < spec.tasks_per_matrix; ++id) {
    spec.for_each_successor(id, /*include_throttle=*/true,
                            [&](std::int64_t succ) {
                              ASSERT_GE(succ, spec.nt);
                              ASSERT_LT(succ, spec.tasks_per_matrix);
                              ++indeg[static_cast<std::size_t>(succ -
                                                               spec.nt)];
                            });
  }
  EXPECT_EQ(indeg, spec.init_indegree);
}

TEST(DagSpec, PrioritiesDecreaseAlongUnthrottledEdges) {
  const tiled::DagSpec spec = tiled::build_dag_spec(160, 32, 3);
  for (std::int64_t id = 0; id < spec.tasks_per_matrix; ++id) {
    const std::int32_t p = spec.priority[static_cast<std::size_t>(id)];
    spec.for_each_successor(id, /*include_throttle=*/false,
                            [&](std::int64_t succ) {
                              EXPECT_GT(p, spec.priority[static_cast<
                                               std::size_t>(succ)])
                                  << id << " -> " << succ;
                            });
  }
}

TEST(DagSpec, ThrottleNeverCreatesACycle) {
  // A cycle would deadlock the simulated execution below; run the tightest
  // lookahead over several shapes and require completion.
  for (const auto& [n, nb] : {std::pair{160, 32}, {100, 20}, {256, 32}}) {
    const tiled::DagSpec spec = tiled::build_dag_spec(n, nb, 1);
    std::vector<std::int32_t> indeg = spec.init_indegree;
    std::vector<std::int64_t> ready;
    for (int j = 0; j < spec.nt; ++j) ready.push_back(spec.pack_id(j));
    std::int64_t done = 0;
    while (!ready.empty()) {
      const std::int64_t id = ready.back();
      ready.pop_back();
      ++done;
      spec.for_each_successor(id, true, [&](std::int64_t succ) {
        if (--indeg[static_cast<std::size_t>(succ - spec.nt)] == 0) {
          ready.push_back(succ);
        }
      });
    }
    EXPECT_EQ(done, spec.tasks_per_matrix) << "n=" << n << " nb=" << nb;
  }
}

TEST(DagSpec, RandomizedCompletionOrderRespectsDependences) {
  // Simulate the executor under adversarial schedules: repeatedly pick a
  // *random* ready task. Assert every task runs exactly once, never before
  // its in-degree reached zero, and that each tile's SYRK/GEMM updates run
  // in ascending step order (the bit-identity precondition).
  for (const int lookahead : {1, 2, 1000}) {
    for (const std::uint32_t seed : {11u, 22u, 33u}) {
      const tiled::DagSpec spec = tiled::build_dag_spec(200, 40, lookahead);
      std::mt19937 rng(seed);
      std::vector<std::int32_t> indeg = spec.init_indegree;
      std::vector<char> ran(static_cast<std::size_t>(spec.tasks_per_matrix),
                            0);
      // last_step[(i,j)] = step of the latest update applied to tile (i,j).
      const tiled::TileLayout tl(spec.n, spec.nb);
      std::vector<int> last_step(static_cast<std::size_t>(tl.num_blocks()),
                                 -1);
      std::vector<std::int64_t> ready;
      for (int j = 0; j < spec.nt; ++j) ready.push_back(spec.pack_id(j));
      std::int64_t done = 0;
      while (!ready.empty()) {
        std::uniform_int_distribution<std::size_t> pick(0, ready.size() - 1);
        const std::size_t at = pick(rng);
        const std::int64_t id = ready[at];
        ready[at] = ready.back();
        ready.pop_back();
        ASSERT_FALSE(ran[static_cast<std::size_t>(id)]);
        ran[static_cast<std::size_t>(id)] = 1;
        if (id >= spec.nt) {
          ASSERT_EQ(indeg[static_cast<std::size_t>(id - spec.nt)], 0);
        }
        const tiled::TileTask t = spec.decode(id);
        if (t.kind == tiled::TaskKind::kSyrk ||
            t.kind == tiled::TaskKind::kGemm) {
          const int j = t.kind == tiled::TaskKind::kSyrk ? t.i : t.j;
          int& last = last_step[static_cast<std::size_t>(tl.block(t.i, j))];
          ASSERT_EQ(last, t.k - 1) << "tile updates out of order";
          last = t.k;
        }
        ++done;
        spec.for_each_successor(id, true, [&](std::int64_t succ) {
          if (--indeg[static_cast<std::size_t>(succ - spec.nt)] == 0) {
            ready.push_back(succ);
          }
        });
      }
      EXPECT_EQ(done, spec.tasks_per_matrix);
    }
  }
}

TEST(DagSpec, RejectsTooFineGrids) {
  // nt would exceed kMaxNt.
  EXPECT_THROW(tiled::build_dag_spec(16 * tiled::kMaxNt + 16, 16, 2), Error);
}

TEST(DagSpec, NbRecommendationIsSane) {
  for (const int n : {96, 256, 1024, 4096}) {
    const int nb = tiled::recommended_nb(n, sizeof(float));
    EXPECT_GE(nb, 32);
    EXPECT_LE(nb, 256);
    EXPECT_LE((n + nb - 1) / nb, tiled::kMaxNt);
    const std::vector<int> cands = tiled::tiled_nb_candidates(n, 4);
    EXPECT_FALSE(cands.empty());
    for (const int c : cands) {
      EXPECT_GE(c, 16);
      EXPECT_LE((n + c - 1) / c, tiled::kMaxNt);
    }
  }
}

// ----------------------------------------------------------- reference ----

TEST(TiledReference, MatchesUnblockedResidualAtSmallN) {
  // n ≤ 64 overlap: the tiled blocked reference and the plain unblocked
  // factorization agree to factorization accuracy (not bitwise — different
  // operation order), checked via reconstruction error.
  for (const auto& [n, nb] : {std::pair{24, 8}, {64, 16}, {64, 48}}) {
    const std::vector<float> a = make_spd(n, 3);
    std::vector<float> t = a;
    std::vector<float> u = a;
    ASSERT_EQ(tiled::potrf_tiled_reference<float>(n, nb, t.data(), n), 0);
    ASSERT_EQ(potrf_unblocked(n, u.data(), n), 0);
    const double et = reconstruction_error<float>(
        n, std::span<const float>(a), std::span<const float>(t));
    const double eu = reconstruction_error<float>(
        n, std::span<const float>(a), std::span<const float>(u));
    EXPECT_LT(et, 1e-5);
    EXPECT_LT(et, 10 * eu + 1e-7) << "n=" << n << " nb=" << nb;
  }
}

TEST(TiledReference, FailureColumnMatchesUnblocked) {
  const int n = 96;
  std::vector<float> a = make_spd(n, 5);
  a[40 * n + 40] = -1.0f;  // breaks positive-definiteness at column 41
  std::vector<float> t = a;
  std::vector<float> u = a;
  const int st_t = tiled::potrf_tiled_reference<float>(n, 32, t.data(), n);
  const int st_u = potrf_unblocked(n, u.data(), n);
  EXPECT_NE(st_t, 0);
  EXPECT_NE(st_u, 0);
  EXPECT_EQ(st_t, st_u);
}

// -------------------------------------------------- service bit-identity --

struct TiledCase {
  int n;
  int nb;
  std::int64_t batch;
};

// Factors `batch` copies of seeded SPD matrices through a private service
// and asserts bitwise equality with the single-threaded tiled reference.
void check_bit_identity(const TiledCase& tc, int threads, int steal_grain,
                        int lookahead) {
  svc::ServiceOptions sopts;
  sopts.num_threads = threads;
  sopts.steal_grain = steal_grain;
  svc::BatchService service(sopts);
  const auto layout = BatchLayout::interleaved(tc.n, tc.batch);
  std::vector<float> data(layout.size_elems());
  std::vector<std::vector<float>> dense(
      static_cast<std::size_t>(tc.batch));
  for (std::int64_t b = 0; b < tc.batch; ++b) {
    dense[static_cast<std::size_t>(b)] =
        make_spd(tc.n, static_cast<std::uint32_t>(100 + b));
    const auto& a = dense[static_cast<std::size_t>(b)];
    for (int j = 0; j < tc.n; ++j) {
      for (int i = j; i < tc.n; ++i) {
        data[layout.index(b, i, j)] = a[static_cast<std::size_t>(j) * tc.n + i];
      }
    }
  }
  svc::TiledOptions topts;
  topts.nb = tc.nb;
  topts.lookahead = lookahead;
  std::vector<std::int32_t> info(static_cast<std::size_t>(tc.batch), -7);
  const FactorResult res = service.factor_tiled<float>(
      layout, std::span<float>(data), topts, info);
  EXPECT_TRUE(res.ok());
  for (std::int64_t b = 0; b < tc.batch; ++b) {
    std::vector<float>& r = dense[static_cast<std::size_t>(b)];
    ASSERT_EQ(tiled::potrf_tiled_reference<float>(tc.n, tc.nb, r.data(),
                                                  tc.n),
              0);
    EXPECT_EQ(info[static_cast<std::size_t>(b)], 0);
    for (int j = 0; j < tc.n; ++j) {
      for (int i = j; i < tc.n; ++i) {
        ASSERT_EQ(data[layout.index(b, i, j)],
                  r[static_cast<std::size_t>(j) * tc.n + i])
            << "n=" << tc.n << " nb=" << tc.nb << " threads=" << threads
            << " b=" << b << " (" << i << "," << j << ")";
      }
    }
  }
}

TEST(TiledService, BitIdenticalToReferenceAcrossSchedules) {
  // Three distinct stealing schedules per shape: single worker (pure
  // sequential drain), 2 workers, and 4 workers with a coarser steal
  // grain. Shapes cover even and ragged tile grids.
  const TiledCase cases[] = {{96, 32, 2}, {192, 64, 2}, {250, 48, 1}};
  for (const TiledCase& tc : cases) {
    check_bit_identity(tc, /*threads=*/1, /*steal_grain=*/1, /*lookahead=*/2);
    check_bit_identity(tc, /*threads=*/2, /*steal_grain=*/1, /*lookahead=*/2);
    check_bit_identity(tc, /*threads=*/4, /*steal_grain=*/2, /*lookahead=*/2);
  }
}

TEST(TiledService, BitIdenticalAcrossLookaheads) {
  // The throttle is order-preserving: every lookahead yields the same bits.
  for (const int la : {1, 3, 1000}) {
    check_bit_identity({160, 32, 2}, /*threads=*/4, /*steal_grain=*/1, la);
  }
}

TEST(TiledService, ChunkedLayoutRoundTrips) {
  // The tiled path reads/writes through layout.index, so chunked
  // interleaved storage must work unchanged.
  svc::BatchService service(svc::ServiceOptions{});
  const int n = 96;
  const std::int64_t batch = 3;
  const auto layout = BatchLayout::interleaved_chunked(n, batch, 64);
  std::vector<float> data(layout.size_elems(), 0.0f);
  std::vector<float> a = make_spd(n, 17);
  for (std::int64_t b = 0; b < batch; ++b) {
    for (int j = 0; j < n; ++j) {
      for (int i = j; i < n; ++i) {
        data[layout.index(b, i, j)] = a[static_cast<std::size_t>(j) * n + i];
      }
    }
  }
  svc::TiledOptions topts;
  topts.nb = 32;
  const FactorResult res =
      service.factor_tiled<float>(layout, std::span<float>(data), topts);
  EXPECT_TRUE(res.ok());
  ASSERT_EQ(tiled::potrf_tiled_reference<float>(n, 32, a.data(), n), 0);
  for (std::int64_t b = 0; b < batch; ++b) {
    for (int j = 0; j < n; ++j) {
      for (int i = j; i < n; ++i) {
        ASSERT_EQ(data[layout.index(b, i, j)],
                  a[static_cast<std::size_t>(j) * n + i]);
      }
    }
  }
}

TEST(TiledService, DoublePrecisionWorks) {
  svc::BatchService service(svc::ServiceOptions{});
  const int n = 96;
  const auto layout = BatchLayout::interleaved(n, 1);
  const std::vector<float> af = make_spd(n, 23);
  std::vector<double> a(af.begin(), af.end());
  std::vector<double> data(layout.size_elems());
  for (int j = 0; j < n; ++j) {
    for (int i = j; i < n; ++i) {
      data[layout.index(0, i, j)] = a[static_cast<std::size_t>(j) * n + i];
    }
  }
  svc::TiledOptions topts;
  topts.nb = 32;
  const FactorResult res =
      service.factor_tiled<double>(layout, std::span<double>(data), topts);
  EXPECT_TRUE(res.ok());
  ASSERT_EQ(tiled::potrf_tiled_reference<double>(n, 32, a.data(), n), 0);
  for (int j = 0; j < n; ++j) {
    for (int i = j; i < n; ++i) {
      ASSERT_EQ(data[layout.index(0, i, j)],
                a[static_cast<std::size_t>(j) * n + i]);
    }
  }
}

TEST(TiledService, NonSpdReportsDeterministicInfoAndBits) {
  // A failed matrix must report the same column and produce the same bits
  // as the sequential reference, under a parallel schedule, while healthy
  // neighbours factor normally.
  svc::BatchService service([] {
    svc::ServiceOptions o;
    o.num_threads = 4;
    return o;
  }());
  const int n = 160;
  const int nb = 32;
  const std::int64_t batch = 3;
  const auto layout = BatchLayout::interleaved(n, batch);
  std::vector<float> data(layout.size_elems());
  std::vector<std::vector<float>> dense(static_cast<std::size_t>(batch));
  for (std::int64_t b = 0; b < batch; ++b) {
    dense[static_cast<std::size_t>(b)] =
        make_spd(n, static_cast<std::uint32_t>(300 + b));
  }
  dense[1][70 * n + 70] = -2.0f;  // poison matrix 1 at column 71
  for (std::int64_t b = 0; b < batch; ++b) {
    const auto& a = dense[static_cast<std::size_t>(b)];
    for (int j = 0; j < n; ++j) {
      for (int i = j; i < n; ++i) {
        data[layout.index(b, i, j)] = a[static_cast<std::size_t>(j) * n + i];
      }
    }
  }
  std::vector<std::int32_t> info(static_cast<std::size_t>(batch), -7);
  const FactorResult res = service.factor_tiled<float>(
      layout, std::span<float>(data), svc::TiledOptions{nb, 2}, info);
  EXPECT_EQ(res.failed_count, 1);
  EXPECT_EQ(res.first_failed, 1);
  for (std::int64_t b = 0; b < batch; ++b) {
    std::vector<float>& r = dense[static_cast<std::size_t>(b)];
    const int st = tiled::potrf_tiled_reference<float>(n, nb, r.data(), n);
    EXPECT_EQ(info[static_cast<std::size_t>(b)], st);
    for (int j = 0; j < n; ++j) {
      for (int i = j; i < n; ++i) {
        ASSERT_EQ(data[layout.index(b, i, j)],
                  r[static_cast<std::size_t>(j) * n + i])
            << "b=" << b;
      }
    }
  }
}

TEST(TiledService, RejectsScreening) {
  svc::BatchService service(svc::ServiceOptions{});
  const auto layout = BatchLayout::interleaved(96, 1);
  std::vector<float> data(layout.size_elems(), 1.0f);
  svc::SubmitOptions sopts;
  sopts.screen = true;
  EXPECT_THROW(
      {
        auto f = service.submit_tiled<float>(layout, std::span<float>(data),
                                             {}, {}, sopts);
        f.wait();
      },
      Error);
}

TEST(TiledService, HonorsDeadlines) {
  // A generous deadline completes normally.
  svc::BatchService service(svc::ServiceOptions{});
  const int n = 96;
  const auto layout = BatchLayout::interleaved(n, 1);
  std::vector<float> a = make_spd(n, 31);
  std::vector<float> data(layout.size_elems());
  for (int j = 0; j < n; ++j) {
    for (int i = j; i < n; ++i) {
      data[layout.index(0, i, j)] = a[static_cast<std::size_t>(j) * n + i];
    }
  }
  svc::SubmitOptions sopts;
  sopts.timeout_ns = std::int64_t{60} * 1000 * 1000 * 1000;
  auto future = service.submit_tiled<float>(layout, std::span<float>(data),
                                            svc::TiledOptions{32, 2}, {},
                                            sopts);
  const FactorResult res = future.wait();
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(future.status(), svc::RequestStatus::kDone);
}

// ------------------------------------------------------ facade routing ----

TEST(TiledFacade, RoutesLargeAutoToTiled) {
  const int n = 96;
  TuningParams p = recommended_params(n);
  p.exec = CpuExec::kAuto;
  const auto layout = BatchCholesky::make_layout(n, 2, p);
  const BatchCholesky chol(layout, p);
  EXPECT_TRUE(chol.uses_tiled());
  EXPECT_FALSE(chol.program().has_value());

  std::vector<float> data(layout.size_elems());
  std::vector<float> a = make_spd(n, 41);
  for (std::int64_t b = 0; b < 2; ++b) {
    for (int j = 0; j < n; ++j) {
      for (int i = j; i < n; ++i) {
        data[layout.index(b, i, j)] = a[static_cast<std::size_t>(j) * n + i];
      }
    }
  }
  const std::uint64_t routed_before = obs::counter_value("tiled.routed");
  const FactorResult res = chol.factorize<float>(std::span<float>(data));
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(obs::counter_value("tiled.routed"), routed_before + 1);
  // Residual check against the original matrix.
  std::vector<float> fact(static_cast<std::size_t>(n) * n, 0.0f);
  for (int j = 0; j < n; ++j) {
    for (int i = j; i < n; ++i) {
      fact[static_cast<std::size_t>(j) * n + i] = data[layout.index(0, i, j)];
    }
  }
  EXPECT_LT(reconstruction_error<float>(n, std::span<const float>(a),
                                        std::span<const float>(fact)),
            1e-5);
}

TEST(TiledFacade, SmallNAndExplicitExecutorsKeepOldPath) {
  TuningParams p = recommended_params(32);
  p.exec = CpuExec::kAuto;
  const BatchCholesky small(BatchCholesky::make_layout(32, 2, p), p);
  EXPECT_FALSE(small.uses_tiled());

  TuningParams pi = recommended_params(96);
  pi.exec = CpuExec::kInterpreter;  // oracle stays reachable past 64
  const BatchCholesky interp(BatchCholesky::make_layout(96, 2, pi), pi);
  EXPECT_FALSE(interp.uses_tiled());

  TuningParams pu = recommended_params(96);
  pu.exec = CpuExec::kAuto;
  const BatchCholesky upper(BatchCholesky::make_layout(96, 2, pu), pu,
                            Triangle::kUpper);
  EXPECT_FALSE(upper.uses_tiled());
}

TEST(TiledFacade, LargeNFallbackCounterFires) {
  const std::uint64_t before = obs::counter_value("cpu.large_n_fallback");
  (void)resolve_cpu_exec(96, SimdIsa::kAuto);
  EXPECT_EQ(obs::counter_value("cpu.large_n_fallback"), before + 1);
  (void)resolve_cpu_exec(64, SimdIsa::kAuto);
  EXPECT_EQ(obs::counter_value("cpu.large_n_fallback"), before + 1);
}

TEST(TiledFacade, LookaheadIsADeviationOnlyKeyAxis) {
  TuningParams p;
  const std::string base = p.key();
  p.lookahead = 4;
  EXPECT_EQ(p.key(), base + "_la4");
  p.lookahead = 2;
  EXPECT_EQ(p.key(), base);
}

}  // namespace
}  // namespace ibchol
