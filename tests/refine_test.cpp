// Tests for mixed-precision iterative refinement.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "cpu/batch_factor.hpp"
#include "cpu/batch_solve.hpp"
#include "cpu/refine.hpp"
#include "cpu/reference.hpp"
#include "layout/convert.hpp"
#include "layout/generate.hpp"
#include "util/aligned_buffer.hpp"

namespace ibchol {
namespace {

struct RefineFixture {
  int n;
  std::int64_t batch;
  BatchLayout layout;
  BatchVectorLayout vlayout;
  AlignedBuffer<float> originals;
  AlignedBuffer<float> factors;
  AlignedBuffer<float> b;
  AlignedBuffer<float> x;

  explicit RefineFixture(int n_in, std::int64_t batch_in, double condition)
      : n(n_in),
        batch(batch_in),
        layout(BatchLayout::interleaved_chunked(n, batch, 32)),
        vlayout(BatchVectorLayout::matching(layout)) {
    originals.resize(layout.size_elems());
    SpdOptions gen;
    gen.kind = SpdKind::kControlledCondition;
    gen.condition = condition;
    generate_spd_batch<float>(layout, originals.span(), gen);
    factors.resize(layout.size_elems());
    std::copy(originals.begin(), originals.end(), factors.begin());
    EXPECT_TRUE(factor_batch_cpu<float>(layout, factors.span(), {}).ok());
    b.resize(vlayout.size_elems());
    for (std::int64_t m = 0; m < batch; ++m) {
      for (int i = 0; i < n; ++i) b[vlayout.index(m, i)] = 1.0f;
    }
    x.resize(vlayout.size_elems());
  }

  double max_residual() const {
    std::vector<float> a(n * n), xs(n);
    const std::vector<float> ones(n, 1.0f);
    double worst = 0.0;
    for (std::int64_t m = 0; m < batch; m += std::max<std::int64_t>(batch / 7, 1)) {
      extract_matrix<float>(layout, std::span<const float>(originals.span()),
                            m, a);
      for (int i = 0; i < n; ++i) xs[i] = x[vlayout.index(m, i)];
      worst = std::max(worst, residual_error<float>(n, a, xs, ones));
    }
    return worst;
  }
};

TEST(Refine, ConvergesOnWellConditionedBatch) {
  RefineFixture f(12, 100, 10.0);
  const RefineResult res = refine_batch_solve(
      f.layout, std::span<const float>(f.originals.span()),
      std::span<const float>(f.factors.span()), f.vlayout,
      std::span<const float>(f.b.span()), f.x.span());
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.iterations, 3);
  EXPECT_LT(f.max_residual(), 1e-6);
}

TEST(Refine, ImprovesIllConditionedSolves) {
  const double cond = 2e4;
  RefineFixture f(16, 64, cond);

  // Plain single-precision solve.
  std::copy(f.b.begin(), f.b.end(), f.x.begin());
  solve_batch_cpu<float>(f.layout, std::span<const float>(f.factors.span()),
                         f.vlayout, f.x.span());
  const double plain = f.max_residual();

  // Refined solve.
  RefineOptions opt;
  opt.max_iterations = 6;
  opt.tolerance = 1e-7;
  const RefineResult res = refine_batch_solve(
      f.layout, std::span<const float>(f.originals.span()),
      std::span<const float>(f.factors.span()), f.vlayout,
      std::span<const float>(f.b.span()), f.x.span(), opt);
  const double refined = f.max_residual();

  EXPECT_LT(refined, plain) << "refinement must not make things worse";
  EXPECT_LT(refined, 1e-6);
  EXPECT_GE(res.iterations, 1);
}

TEST(Refine, ZeroIterationsEqualsPlainSolve) {
  RefineFixture f(8, 64, 10.0);
  RefineOptions opt;
  opt.max_iterations = 0;
  const RefineResult res = refine_batch_solve(
      f.layout, std::span<const float>(f.originals.span()),
      std::span<const float>(f.factors.span()), f.vlayout,
      std::span<const float>(f.b.span()), f.x.span(), opt);
  EXPECT_EQ(res.iterations, 0);
  EXPECT_FALSE(res.converged);

  AlignedBuffer<float> plain(f.vlayout.size_elems());
  std::copy(f.b.begin(), f.b.end(), plain.begin());
  solve_batch_cpu<float>(f.layout, std::span<const float>(f.factors.span()),
                         f.vlayout, plain.span());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(f.x[i], plain[i]);
  }
}

TEST(Refine, RejectsMismatchedSpans) {
  RefineFixture f(8, 64, 10.0);
  AlignedBuffer<float> tiny(4);
  EXPECT_THROW(refine_batch_solve(
                   f.layout, std::span<const float>(f.originals.span()),
                   std::span<const float>(tiny.span()), f.vlayout,
                   std::span<const float>(f.b.span()), f.x.span()),
               Error);
}

TEST(Refine, FastMathVariantConverges) {
  RefineFixture f(12, 64, 100.0);
  RefineOptions opt;
  opt.math = MathMode::kFastMath;
  const RefineResult res = refine_batch_solve(
      f.layout, std::span<const float>(f.originals.span()),
      std::span<const float>(f.factors.span()), f.vlayout,
      std::span<const float>(f.b.span()), f.x.span(), opt);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(f.max_residual(), 1e-5);
}

}  // namespace
}  // namespace ibchol
