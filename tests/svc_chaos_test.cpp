// Overload- and fault-semantics tests for BatchService: per-request
// deadlines, admission policies (reject / shed-oldest / bounded wait),
// priority classes, scratch-exhaustion aborts, poison quarantine, the
// worker watchdog, and the seeded chaos soak.
//
// The chaos-dependent tests skip themselves when the hooks are compiled
// out (-DIBCHOL_CHAOS=OFF). Everything here is also the check.sh --chaos
// workload, run under ASan+UBSan and TSAN with three fixed seeds; the
// soak honors IBCHOL_CHAOS_SEED to pin a single seed for reproduction.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "cpu/batch_factor.hpp"
#include "cpu/recover.hpp"
#include "layout/generate.hpp"
#include "layout/layout.hpp"
#include "svc/batch_service.hpp"
#include "util/aligned_buffer.hpp"
#include "util/fault_inject.hpp"

namespace ibchol::svc {
namespace {

template <typename T>
struct Workload {
  BatchLayout layout;
  AlignedBuffer<T> data;
  std::vector<std::int32_t> info;

  explicit Workload(const BatchLayout& l, std::uint64_t seed = 42)
      : layout(l),
        data(l.size_elems()),
        info(static_cast<std::size_t>(l.batch()), -7) {
    generate_spd_batch<T>(layout, data.span(),
                          {SpdKind::kGramPlusDiagonal, seed, 50.0});
  }

  Workload clone() const {
    Workload copy(layout, Uninit{});
    std::memcpy(copy.data.span().data(), data.span().data(),
                data.span().size() * sizeof(T));
    copy.info = info;
    return copy;
  }

 private:
  struct Uninit {};
  Workload(const BatchLayout& l, Uninit)
      : layout(l), data(l.size_elems()),
        info(static_cast<std::size_t>(l.batch()), -7) {}
};

/// RAII chaos (de)installation so a failing assertion cannot leak an
/// active plan into the next test case.
struct ScopedChaos {
  explicit ScopedChaos(const chaos::SvcChaosPlan& plan) {
    chaos::install_svc_chaos(plan);
  }
  ~ScopedChaos() { chaos::uninstall_svc_chaos(); }
};

/// A request big enough to keep one worker busy for a while, so requests
/// submitted behind it verifiably sit in the queue.
BatchLayout busy_layout() { return BatchLayout::interleaved(32, 64 * 200); }

// ------------------------------------------------------------ deadlines ----

TEST(ServiceDeadline, ExpiredWhileQueuedCompletesUntouched) {
  BatchService service({.num_threads = 1});
  Workload<float> big(busy_layout());
  const BatchLayout small = BatchLayout::interleaved(8, 64);
  Workload<float> w(small);
  std::vector<float> before(w.data.span().begin(), w.data.span().end());

  FactorFuture f_big = service.submit<float>(busy_layout(), big.data.span(),
                                             {}, big.info);
  // 1ns deadline: expired long before the single worker finishes the big
  // request and reaches this one.
  SubmitOptions sopts;
  sopts.timeout_ns = 1;
  FactorFuture f = service.submit<float>(small, w.data.span(), {}, w.info,
                                         nullptr, sopts);
  const FactorResult r = f.wait();
  EXPECT_EQ(f.status(), RequestStatus::kDeadlineExceeded);
  EXPECT_EQ(r.failed_count, 0);
  // Data untouched, info marked not-executed.
  EXPECT_EQ(std::memcmp(w.data.span().data(), before.data(),
                        before.size() * sizeof(float)),
            0);
  for (const std::int32_t v : w.info) EXPECT_EQ(v, kInfoNotExecuted);
  // A terminal request cannot be cancelled.
  EXPECT_FALSE(f.try_cancel());
  EXPECT_EQ(f_big.wait().failed_count, 0);
}

TEST(ServiceDeadline, GenerousDeadlineDoesNotPerturbResults) {
  const BatchLayout layout = BatchLayout::interleaved(16, 300);
  Workload<double> reference(layout);
  Workload<double> serviced = reference.clone();
  const FactorResult want = factor_batch_cpu<double>(
      layout, reference.data.span(), {}, reference.info);

  BatchService service({.num_threads = 2});
  SubmitOptions sopts;
  sopts.timeout_ns = std::int64_t{60} * 1'000'000'000;  // one minute
  FactorFuture f = service.submit<double>(layout, serviced.data.span(), {},
                                          serviced.info, nullptr, sopts);
  const FactorResult got = f.wait();
  EXPECT_EQ(f.status(), RequestStatus::kDone);
  EXPECT_EQ(got.failed_count, want.failed_count);
  EXPECT_EQ(serviced.info, reference.info);
  EXPECT_EQ(std::memcmp(serviced.data.span().data(),
                        reference.data.span().data(),
                        reference.data.span().size() * sizeof(double)),
            0);
}

// ------------------------------------------------------------ priority ----

TEST(ServicePriority, HighPriorityClaimedBeforeQueuedNormal) {
  BatchService service({.num_threads = 1});
  Workload<float> head(busy_layout());
  Workload<float> normal(busy_layout(), 7);
  const BatchLayout small = BatchLayout::interleaved(8, 64);
  Workload<float> hi(small);

  FactorFuture f_head = service.submit<float>(busy_layout(), head.data.span(),
                                              {}, head.info);
  FactorFuture f_normal = service.submit<float>(
      busy_layout(), normal.data.span(), {}, normal.info);
  SubmitOptions sopts;
  sopts.priority = 1;
  FactorFuture f_hi = service.submit<float>(small, hi.data.span(), {},
                                            hi.info, nullptr, sopts);

  EXPECT_EQ(f_hi.wait().failed_count, 0);
  // The single worker ran the high-priority request right after the head
  // request; the (much larger) normal request cannot have finished yet.
  EXPECT_NE(f_normal.status(), RequestStatus::kDone);
  EXPECT_EQ(f_normal.wait().failed_count, 0);
  EXPECT_EQ(f_head.wait().failed_count, 0);
}

// ------------------------------------------------------------ admission ----

TEST(ServiceAdmission, RejectPolicyShedsWhenPoolIsFull) {
  ServiceOptions opts;
  opts.num_threads = 1;
  opts.max_inflight = 1;
  opts.policy.admit = AdmitPolicy::kReject;
  BatchService service(opts);

  Workload<float> big(busy_layout());
  FactorFuture f_big = service.submit<float>(busy_layout(), big.data.span(),
                                             {}, big.info);

  const BatchLayout small = BatchLayout::interleaved(8, 64);
  Workload<float> w(small);
  std::vector<float> before(w.data.span().begin(), w.data.span().end());
  FactorFuture f = service.submit<float>(small, w.data.span(), {}, w.info);

  ASSERT_TRUE(f.valid());
  EXPECT_EQ(f.status(), RequestStatus::kOverloaded);
  EXPECT_EQ(f.wait().failed_count, 0);  // immediate: no slot, no work
  EXPECT_FALSE(f.try_cancel());
  EXPECT_TRUE(f.recovery_report().matrices.empty());
  EXPECT_EQ(std::memcmp(w.data.span().data(), before.data(),
                        before.size() * sizeof(float)),
            0);
  for (const std::int32_t v : w.info) EXPECT_EQ(v, kInfoNotExecuted);
  EXPECT_EQ(f_big.wait().failed_count, 0);

  // With the pool free again, the same submit is admitted and runs.
  Workload<float> again(small);
  EXPECT_EQ(service.factor<float>(small, again.data.span(), {}, again.info)
                .failed_count,
            0);
}

TEST(ServiceAdmission, BoundedWaitRejectsAfterBudget) {
  ServiceOptions opts;
  opts.num_threads = 1;
  opts.max_inflight = 1;
  opts.policy.admit = AdmitPolicy::kBoundedWait;
  opts.policy.max_wait_ns = 2'000'000;  // 2ms ≪ the busy request
  BatchService service(opts);

  Workload<float> big(busy_layout());
  FactorFuture f_big = service.submit<float>(busy_layout(), big.data.span(),
                                             {}, big.info);
  const BatchLayout small = BatchLayout::interleaved(8, 64);
  Workload<float> w(small);
  FactorFuture f = service.submit<float>(small, w.data.span(), {}, w.info);
  EXPECT_EQ(f.status(), RequestStatus::kOverloaded);
  EXPECT_EQ(f_big.wait().failed_count, 0);
}

TEST(ServiceAdmission, ShedOldestReclaimsExpiredQueuedSlot) {
  ServiceOptions opts;
  opts.num_threads = 1;
  opts.max_inflight = 2;
  opts.policy.admit = AdmitPolicy::kShedOldest;
  BatchService service(opts);

  Workload<float> big(busy_layout());
  FactorFuture f_big = service.submit<float>(busy_layout(), big.data.span(),
                                             {}, big.info);
  // Fill the second (last) slot with a request that expires immediately
  // and whose future is dropped — shedding it frees the slot entirely.
  const BatchLayout small = BatchLayout::interleaved(8, 64);
  Workload<float> doomed(small);
  std::vector<float> doomed_before(doomed.data.span().begin(),
                                   doomed.data.span().end());
  {
    SubmitOptions sopts;
    sopts.timeout_ns = 1;
    FactorFuture f = service.submit<float>(small, doomed.data.span(), {},
                                           doomed.info, nullptr, sopts);
  }
  // Pool full; this submit must shed the expired request and be admitted.
  Workload<float> w(small);
  FactorFuture f = service.submit<float>(small, w.data.span(), {}, w.info);
  ASSERT_TRUE(f.valid());
  EXPECT_NE(f.status(), RequestStatus::kOverloaded);
  EXPECT_EQ(f.wait().failed_count, 0);
  EXPECT_EQ(f.status(), RequestStatus::kDone);
  // The shed request was never executed.
  EXPECT_EQ(std::memcmp(doomed.data.span().data(), doomed_before.data(),
                        doomed_before.size() * sizeof(float)),
            0);
  for (const std::int32_t v : doomed.info) EXPECT_EQ(v, kInfoNotExecuted);
  EXPECT_EQ(f_big.wait().failed_count, 0);
}

TEST(ServiceAdmission, ShedOldestRejectsWhenNothingReclaimable) {
  ServiceOptions opts;
  opts.num_threads = 1;
  opts.max_inflight = 2;
  opts.policy.admit = AdmitPolicy::kShedOldest;
  BatchService service(opts);

  Workload<float> big(busy_layout());
  FactorFuture f_big = service.submit<float>(busy_layout(), big.data.span(),
                                             {}, big.info);
  // The queued request has no deadline: shed-oldest must not discard it.
  const BatchLayout small = BatchLayout::interleaved(8, 64);
  Workload<float> queued(small);
  FactorFuture f_queued =
      service.submit<float>(small, queued.data.span(), {}, queued.info);

  Workload<float> w(small);
  FactorFuture f = service.submit<float>(small, w.data.span(), {}, w.info);
  EXPECT_EQ(f.status(), RequestStatus::kOverloaded);
  // The protected request still runs to completion.
  EXPECT_EQ(f_queued.wait().failed_count, 0);
  EXPECT_EQ(f_queued.status(), RequestStatus::kDone);
  EXPECT_EQ(f_big.wait().failed_count, 0);
}

// ------------------------------------------------------ scratch failure ----

TEST(ServiceChaos, AllocFailureAbortsRequestNotService) {
  if constexpr (!chaos::kEnabled) {
    GTEST_SKIP() << "chaos hooks compiled out (IBCHOL_CHAOS=OFF)";
  }
  BatchService service({.num_threads = 1});
  // Explicit chunk_size on a plain interleaved layout forces the packed
  // path — the arena user — and the cold arena guarantees upstream draws.
  const BatchLayout layout = BatchLayout::interleaved(16, 300);
  CpuFactorOptions options;
  options.chunk_size = 64;
  Workload<float> w(layout);
  std::vector<float> before(w.data.span().begin(), w.data.span().end());

  {
    chaos::SvcChaosPlan plan;
    plan.alloc_fail_rate = 1.0;
    ScopedChaos chaos_guard(plan);
    FactorFuture f =
        service.submit<float>(layout, w.data.span(), options, w.info);
    (void)f.wait();
    EXPECT_EQ(f.status(), RequestStatus::kResourceExhausted);
    EXPECT_GT(chaos::chaos_faults_fired(), 0u);
  }
  // Nothing executed: data untouched, info marked, arena accounted.
  EXPECT_EQ(std::memcmp(w.data.span().data(), before.data(),
                        before.size() * sizeof(float)),
            0);
  for (const std::int32_t v : w.info) EXPECT_EQ(v, kInfoNotExecuted);
  const ArenaStats stats = service.arena_stats();
  EXPECT_GT(stats.failed_allocs, 0u);
  EXPECT_EQ(stats.live_leases, 0u);

  // The service survived: the same request now runs clean.
  Workload<float> reference(layout);
  const FactorResult want = factor_batch_cpu<float>(
      layout, reference.data.span(), options, reference.info);
  generate_spd_batch<float>(layout, w.data.span(),
                            {SpdKind::kGramPlusDiagonal, 42, 50.0});
  const FactorResult got =
      service.factor<float>(layout, w.data.span(), options, w.info);
  EXPECT_EQ(got.failed_count, want.failed_count);
  EXPECT_EQ(w.info, reference.info);
}

// ----------------------------------------------------- poison quarantine ----

TEST(ServiceScreen, PoisonedBatchIsQuarantinedWithReport) {
  const BatchLayout layout = BatchLayout::interleaved(16, 300);
  Workload<double> w(layout);
  // Plant NaN/Inf in two matrices (symmetric, off-diagonal — the
  // deterministic-fault convention).
  w.data.span()[layout.index(5, 2, 1)] =
      std::numeric_limits<double>::quiet_NaN();
  w.data.span()[layout.index(5, 1, 2)] =
      std::numeric_limits<double>::quiet_NaN();
  w.data.span()[layout.index(200, 3, 0)] =
      std::numeric_limits<double>::infinity();
  w.data.span()[layout.index(200, 0, 3)] =
      std::numeric_limits<double>::infinity();

  BatchService service({.num_threads = 3});
  SubmitOptions sopts;
  sopts.screen = true;
  FactorFuture f = service.submit<double>(layout, w.data.span(), {}, w.info,
                                          nullptr, sopts);
  const FactorResult r = f.wait();
  EXPECT_EQ(f.status(), RequestStatus::kPoisoned);
  const RecoveryReport report = f.recovery_report();
  EXPECT_EQ(report.nonfinite, 2);
  EXPECT_EQ(report.unrecoverable, 2);
  EXPECT_EQ(report.recovered, 0);
  ASSERT_EQ(report.matrices.size(), 2u);
  EXPECT_EQ(report.matrices[0].index, 5);
  EXPECT_EQ(report.matrices[1].index, 200);
  EXPECT_EQ(report.matrices[0].first_info, kInfoNonFinite);
  EXPECT_EQ(w.info[5], kInfoNonFinite);
  EXPECT_EQ(w.info[200], kInfoNonFinite);
  EXPECT_GE(r.failed_count, 2);

  // Every clean matrix factored exactly as an unpoisoned reference batch.
  Workload<double> reference(layout);
  const FactorResult want = factor_batch_cpu<double>(
      layout, reference.data.span(), {}, reference.info);
  EXPECT_EQ(r.failed_count - 2, want.failed_count);
  for (std::int64_t b = 0; b < layout.batch(); ++b) {
    if (b == 5 || b == 200) continue;
    ASSERT_EQ(w.info[static_cast<std::size_t>(b)],
              reference.info[static_cast<std::size_t>(b)]);
    for (int i = 0; i < layout.n(); ++i) {
      for (int j = 0; j <= i; ++j) {
        ASSERT_EQ(w.data.span()[layout.index(b, i, j)],
                  reference.data.span()[layout.index(b, i, j)])
            << "matrix " << b << " (" << i << "," << j << ")";
      }
    }
  }
}

TEST(ServiceScreen, CleanBatchWithScreenIsBitIdentical) {
  const BatchLayout layout = BatchLayout::interleaved_chunked(16, 300, 64);
  Workload<float> reference(layout);
  Workload<float> serviced = reference.clone();
  const FactorResult want = factor_batch_cpu<float>(
      layout, reference.data.span(), {}, reference.info);

  BatchService service({.num_threads = 2});
  SubmitOptions sopts;
  sopts.screen = true;
  FactorFuture f = service.submit<float>(layout, serviced.data.span(), {},
                                         serviced.info, nullptr, sopts);
  const FactorResult got = f.wait();
  EXPECT_EQ(f.status(), RequestStatus::kDone);
  EXPECT_TRUE(f.recovery_report().matrices.empty());
  EXPECT_EQ(got.failed_count, want.failed_count);
  EXPECT_EQ(serviced.info, reference.info);
  EXPECT_EQ(std::memcmp(serviced.data.span().data(),
                        reference.data.span().data(),
                        reference.data.span().size() * sizeof(float)),
            0);
}

// ------------------------------------------------------------- watchdog ----

TEST(ServiceChaos, WatchdogRespawnsStalledWorker) {
  if constexpr (!chaos::kEnabled) {
    GTEST_SKIP() << "chaos hooks compiled out (IBCHOL_CHAOS=OFF)";
  }
  ServiceOptions opts;
  opts.num_threads = 1;
  opts.watchdog.enabled = true;
  opts.watchdog.check_interval_ns = 2'000'000;     // 2ms sampling
  opts.watchdog.stall_threshold_ns = 20'000'000;   // 20ms ≪ the stall
  opts.watchdog.max_respawns = 2;
  BatchService service(opts);
  EXPECT_EQ(service.workers_started(), 1);

  const BatchLayout layout = BatchLayout::interleaved(16, 3 * 64);
  CpuFactorOptions options;
  options.chunk_size = 64;  // 3 units: a few long stalls, quick overall
  Workload<float> reference(layout);
  const FactorResult want = factor_batch_cpu<float>(
      layout, reference.data.span(), options, reference.info);
  Workload<float> w(layout);

  {
    chaos::SvcChaosPlan plan;
    plan.stall_rate = 1.0;
    plan.stall_ms = 100.0;  // every unit stalls 100ms: heartbeat goes flat
    ScopedChaos chaos_guard(plan);
    const FactorResult got =
        service.factor<float>(layout, w.data.span(), options, w.info);
    EXPECT_EQ(got.failed_count, want.failed_count);
  }
  // The watchdog observed a flat heartbeat past the threshold and spawned
  // replacement worker(s), and the stalled (not hung) originals retired
  // without corrupting the result.
  EXPECT_GT(service.workers_started(), 1);
  EXPECT_LE(service.workers_started(), 1 + opts.watchdog.max_respawns);
  EXPECT_EQ(w.info, reference.info);
  EXPECT_EQ(std::memcmp(w.data.span().data(), reference.data.span().data(),
                        reference.data.span().size() * sizeof(float)),
            0);
}

TEST(ServiceWatchdog, QuietServiceNeverRespawns) {
  ServiceOptions opts;
  opts.num_threads = 2;
  opts.watchdog.enabled = true;
  opts.watchdog.check_interval_ns = 1'000'000;
  // Generous threshold: real work heartbeats far faster than this.
  opts.watchdog.stall_threshold_ns = 10'000'000'000;
  BatchService service(opts);
  const BatchLayout layout = BatchLayout::interleaved(16, 200);
  Workload<float> w(layout);
  for (int i = 0; i < 5; ++i) {
    (void)service.factor<float>(layout, w.data.span(), {}, w.info);
  }
  EXPECT_EQ(service.workers_started(), 2);
}

// ------------------------------------------------------------ chaos soak ----

/// One soak round: a mix of plain, deadline, screened(+poisoned), and
/// cancelled requests against one service under an active chaos plan.
/// Invariants: every future terminates with an expected status, kDone
/// results are bit-identical to the synchronous reference, and the arena
/// leaks nothing.
void run_chaos_soak(std::uint64_t seed) {
  chaos::SvcChaosPlan plan;
  plan.seed = seed;
  plan.stall_rate = 0.05;
  plan.stall_ms = 1.0;
  plan.writeback_delay_rate = 0.05;
  plan.writeback_delay_ms = 0.5;
  plan.alloc_fail_rate = 0.1;
  ScopedChaos chaos_guard(plan);

  const BatchLayout layout = BatchLayout::interleaved(16, 300);
  CpuFactorOptions options;
  options.chunk_size = 64;
  Workload<float> reference(layout, seed);

  constexpr int kRequests = 16;
  ServiceOptions sopts_svc;
  sopts_svc.num_threads = 3;
  // Slots must cover futures *held*, and this soak holds all of them
  // until the end; kBlock admission would otherwise wait forever.
  sopts_svc.max_inflight = kRequests;
  sopts_svc.policy.admit = AdmitPolicy::kBlock;

  std::vector<Workload<float>> batches;
  batches.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    batches.push_back(reference.clone());
  }
  // Reference factored synchronously: factor_batch_cpu never touches the
  // service arena, and stalls/delays do not change results anyway.
  const FactorResult want = factor_batch_cpu<float>(
      layout, reference.data.span(), options, reference.info);
  std::vector<RequestStatus> statuses(kRequests, RequestStatus::kQueued);
  {
    BatchService service(sopts_svc);
    std::vector<FactorFuture> futures;
    futures.reserve(kRequests);
    std::vector<int> kind(kRequests, 0);
    for (int i = 0; i < kRequests; ++i) {
      SubmitOptions so;
      auto& b = batches[static_cast<std::size_t>(i)];
      switch (i % 4) {
        case 0:
          break;  // plain
        case 1:
          so.timeout_ns = std::int64_t{30} * 1'000'000'000;  // generous
          break;
        case 2:
          so.screen = true;
          // Poison one matrix; the screen must catch and quarantine it.
          b.data.span()[layout.index(7, 2, 0)] =
              std::numeric_limits<float>::quiet_NaN();
          b.data.span()[layout.index(7, 0, 2)] =
              std::numeric_limits<float>::quiet_NaN();
          break;
        case 3:
          so.priority = 1;
          break;
      }
      kind[static_cast<std::size_t>(i)] = i % 4;
      futures.push_back(service.submit<float>(layout, b.data.span(), options,
                                              b.info, nullptr, so));
    }
    // Cancel a couple (may or may not win the race; both outcomes legal).
    (void)futures[0].try_cancel();
    (void)futures[4].try_cancel();
    for (int i = 0; i < kRequests; ++i) {
      (void)futures[static_cast<std::size_t>(i)].wait();
      statuses[static_cast<std::size_t>(i)] =
          futures[static_cast<std::size_t>(i)].status();
    }
    const ArenaStats stats = service.arena_stats();
    EXPECT_EQ(stats.live_leases, 0u) << "seed " << seed;

    for (int i = 0; i < kRequests; ++i) {
      const RequestStatus st = statuses[static_cast<std::size_t>(i)];
      const auto& b = batches[static_cast<std::size_t>(i)];
      switch (st) {
        case RequestStatus::kDone:
          EXPECT_NE(kind[static_cast<std::size_t>(i)], 2)
              << "poisoned request " << i << " completed kDone (seed "
              << seed << ")";
          EXPECT_EQ(b.info, reference.info) << "request " << i;
          EXPECT_EQ(std::memcmp(b.data.span().data(),
                                reference.data.span().data(),
                                reference.data.span().size() * sizeof(float)),
                    0)
              << "request " << i << " not bit-identical (seed " << seed
              << ")";
          break;
        case RequestStatus::kPoisoned: {
          EXPECT_EQ(kind[static_cast<std::size_t>(i)], 2);
          const RecoveryReport rep =
              futures[static_cast<std::size_t>(i)].recovery_report();
          EXPECT_EQ(rep.nonfinite, 1);
          ASSERT_EQ(rep.matrices.size(), 1u);
          EXPECT_EQ(rep.matrices[0].index, 7);
          EXPECT_EQ(b.info[7], kInfoNonFinite);
          break;
        }
        case RequestStatus::kCancelled:
          EXPECT_TRUE(i == 0 || i == 4);
          break;
        case RequestStatus::kResourceExhausted:
          // Chaos took its scratch; legal for any chunked request.
          break;
        default:
          ADD_FAILURE() << "request " << i << " ended in status "
                        << static_cast<int>(st) << " (seed " << seed << ")";
      }
    }
    EXPECT_EQ(want.failed_count, 0);  // the generator really made SPD input
  }  // service destruction under chaos must drain and join cleanly
}

TEST(ServiceChaos, SoakSeedsTerminateWithExactResults) {
  if constexpr (!chaos::kEnabled) {
    GTEST_SKIP() << "chaos hooks compiled out (IBCHOL_CHAOS=OFF)";
  }
  // check.sh --chaos runs the fixed seeds; IBCHOL_CHAOS_SEED pins one for
  // reproducing a failure.
  if (const char* env = std::getenv("IBCHOL_CHAOS_SEED")) {
    run_chaos_soak(std::strtoull(env, nullptr, 10));
    return;
  }
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    run_chaos_soak(seed);
  }
}

}  // namespace
}  // namespace ibchol::svc
