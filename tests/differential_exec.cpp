// Differential executor testing: every CpuExec × layout × ISA tier against
// the interpreter oracle on the same seeded batch.
//
// The interpreter is the repo's correctness oracle (runtime trip counts,
// no fusion, no intrinsics). Under IEEE math every other executor performs
// the same correctly-rounded operation sequence, so its factors must be
// IDENTICAL BITS to the oracle's; under fast math the executors use their
// native approximations and are held to a relative bound instead. One
// table drives the whole matrix of configurations, so adding an executor
// or tier is one more row, not a new test.
//
// The vectorized rows inherit the FMA caveat of simd_exec_test.cpp: the
// interpreter relies on compiler contraction to emit the same FMAs the
// intrinsic bodies spell explicitly, so without __FMA__ those rows degrade
// to the specialized executor's few-ulp bound. Specialized rows assert bit
// identity unconditionally (no FMA asymmetry — both sides are scalar).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <ostream>
#include <vector>

#include "cpu/batch_factor.hpp"
#include "cpu/tile_exec.hpp"
#include "layout/generate.hpp"
#include "layout/layout.hpp"
#include "util/aligned_buffer.hpp"

namespace ibchol {
namespace {

constexpr std::int64_t kBatch = 2 * kLaneBlock + 6;  // padding tail

enum class Compare { kBitIdentical, kBitIdenticalIfFma, kBounded };

struct DiffCase {
  int n;
  LayoutKind layout;
  CpuExec exec;
  SimdIsa isa;
  MathMode math;
  Compare compare;
  double tol;  // relative, used by the bounded comparisons
};

void PrintTo(const DiffCase& c, std::ostream* os) {
  *os << "n" << c.n << "_" << to_string(c.layout) << "_"
      << to_string(c.exec) << "_" << to_string(c.isa) << "_"
      << to_string(c.math);
}

BatchLayout make_layout(const DiffCase& c) {
  return c.layout == LayoutKind::kInterleaved
             ? BatchLayout::interleaved(c.n, kBatch)
             : BatchLayout::interleaved_chunked(c.n, kBatch, 64);
}

template <typename T>
AlignedBuffer<T> factor_with(const BatchLayout& layout,
                             const AlignedBuffer<T>& orig,
                             const CpuFactorOptions& options,
                             std::vector<std::int32_t>& info) {
  AlignedBuffer<T> data(layout.size_elems());
  std::copy(orig.begin(), orig.end(), data.begin());
  info.assign(static_cast<std::size_t>(layout.batch()), 0);
  (void)factor_batch_cpu<T>(layout, data.span(), options,
                            std::span<std::int32_t>(info));
  return data;
}

template <typename T>
void run_case(const DiffCase& c) {
  const BatchLayout layout = make_layout(c);
  AlignedBuffer<T> orig(layout.size_elems());
  generate_spd_batch<T>(layout, orig.span(),
                        {SpdKind::kGramPlusDiagonal, 20260807, 50.0});

  CpuFactorOptions opt;
  opt.nb = std::min(8, c.n);
  opt.unroll = Unroll::kFull;

  // The oracle always runs IEEE: for IEEE rows that is the exact reference;
  // for fast-math rows it bounds the approximation error end to end.
  std::vector<std::int32_t> ref_info, got_info;
  opt.exec = CpuExec::kInterpreter;
  opt.math = MathMode::kIeee;
  const AlignedBuffer<T> ref = factor_with(layout, orig, opt, ref_info);

  opt.exec = c.exec;
  opt.isa = c.isa;  // clamped by the library above the detected tier
  opt.math = c.math;
  const AlignedBuffer<T> got = factor_with(layout, orig, opt, got_info);

  EXPECT_EQ(ref_info, got_info) << "per-matrix status diverged";

  bool exact = c.compare == Compare::kBitIdentical;
#if defined(__FMA__)
  exact = exact || c.compare == Compare::kBitIdenticalIfFma;
#endif
  if (exact) {
    EXPECT_EQ(std::memcmp(ref.data(), got.data(),
                          layout.size_elems() * sizeof(T)),
              0)
        << "factor bytes diverged from the interpreter oracle";
  } else {
    const T tol = static_cast<T>(c.tol);
    for (std::size_t i = 0; i < layout.size_elems(); ++i) {
      const T bound = tol * std::max(T{1}, std::abs(ref[i]));
      ASSERT_NEAR(ref[i], got[i], bound) << "elem " << i;
    }
  }
}

class DifferentialExecTest : public ::testing::TestWithParam<DiffCase> {};

TEST_P(DifferentialExecTest, Float) { run_case<float>(GetParam()); }

TEST_P(DifferentialExecTest, Double) {
  const DiffCase c = GetParam();
  if (c.math == MathMode::kFastMath) GTEST_SKIP() << "fast math is fp32";
  run_case<double>(c);
}

std::vector<DiffCase> diff_cases() {
  std::vector<DiffCase> cases;
  // n spans fused whole-matrix kernels, runtime-n bodies, tile programs
  // with ragged edges (n % nb != 0), and the interpreter-fallback range.
  for (const int n : {3, 8, 16, 24, 33, 48}) {
    for (const auto layout :
         {LayoutKind::kInterleaved, LayoutKind::kInterleavedChunked}) {
      cases.push_back({n, layout, CpuExec::kSpecialized, SimdIsa::kAuto,
                       MathMode::kIeee, Compare::kBitIdenticalIfFma, 1e-5});
      // kAuto resolves to the measured winner (possibly vectorized), so it
      // carries the vectorized rows' FMA caveat.
      cases.push_back({n, layout, CpuExec::kAuto, SimdIsa::kAuto,
                       MathMode::kIeee, Compare::kBitIdenticalIfFma, 1e-5});
      for (const SimdIsa isa :
           {SimdIsa::kScalar, SimdIsa::kAvx2, SimdIsa::kAvx512}) {
        cases.push_back({n, layout, CpuExec::kVectorized, isa,
                         MathMode::kIeee, Compare::kBitIdenticalIfFma, 1e-5});
      }
      cases.push_back({n, layout, CpuExec::kVectorized, SimdIsa::kAuto,
                       MathMode::kFastMath, Compare::kBounded, 1e-4});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Grid, DifferentialExecTest,
                         ::testing::ValuesIn(diff_cases()),
                         ::testing::PrintToStringParamName());

}  // namespace
}  // namespace ibchol
