// Deterministic-replay test: two runs of the same seeded workload under
// tracing produce identical span trees up to timestamps and thread ids.
//
// Span identity is (name literal, category, integer payload); timestamps
// and tids are the only nondeterministic fields (the OS scheduler owns
// them). The comparison strips both and sorts, i.e. compares the span
// MULTISET — the static OpenMP schedule fixes which spans exist and their
// payloads, not which worker emits them first. The same normalization is
// what a tooling consumer diffing two exported traces would apply.
//
// Counters are replayed too: the same workload must produce the same
// counter deltas (they count work items, not time).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <tuple>
#include <vector>

#include "cpu/batch_factor.hpp"
#include "cpu/tile_exec.hpp"
#include "layout/generate.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "util/aligned_buffer.hpp"

namespace ibchol {
namespace {

// A span with the nondeterministic fields stripped.
using SpanKey = std::tuple<std::string, std::string, std::int64_t>;

std::vector<SpanKey> normalized_spans() {
  std::vector<SpanKey> keys;
  for (const obs::TraceSpan& s : obs::collect_spans()) {
    keys.emplace_back(s.name, s.cat, s.arg);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

// One traced run of the seeded workload: a packed-pipeline factorization
// (simple interleaved, explicit chunk) plus a chunked in-place one —
// together they emit every pipeline span kind. Returns the normalized
// span multiset and the counter snapshot.
std::pair<std::vector<SpanKey>,
          std::vector<std::pair<std::string, std::uint64_t>>>
traced_run() {
  obs::reset_counters();
  obs::start_tracing();

  CpuFactorOptions opt;
  opt.unroll = Unroll::kFull;
  opt.exec = CpuExec::kAuto;
  opt.chunk_size = 64;
  // Span payloads are chunk/block indices, so they are independent of the
  // schedule; the thread count is pinned anyway so the two runs are as
  // alike as the harness can make them.
  opt.num_threads = 2;

  const BatchLayout il = BatchLayout::interleaved(16, 8 * kLaneBlock);
  AlignedBuffer<float> idata(il.size_elems());
  generate_spd_batch<float>(il, idata.span(),
                            {SpdKind::kGramPlusDiagonal, 777, 50.0});
  (void)factor_batch_cpu<float>(il, idata.span(), opt);

  const BatchLayout cl = BatchLayout::interleaved_chunked(24, 300, 64);
  AlignedBuffer<float> cdata(cl.size_elems());
  generate_spd_batch<float>(cl, cdata.span(),
                            {SpdKind::kGramPlusDiagonal, 778, 50.0});
  (void)factor_batch_cpu<float>(cl, cdata.span(), opt);

  obs::stop_tracing();
  return {normalized_spans(), obs::counters_snapshot()};
}

TEST(ObsReplay, SameSeedSameSpanTree) {
  if (!obs::kEnabled) {
    GTEST_SKIP() << "observability layer compiled out (IBCHOL_OBS=OFF)";
  }
  const auto [spans_a, counters_a] = traced_run();
  const auto [spans_b, counters_b] = traced_run();

  ASSERT_FALSE(spans_a.empty()) << "workload emitted no spans";
  ASSERT_EQ(spans_a.size(), spans_b.size());
  for (std::size_t i = 0; i < spans_a.size(); ++i) {
    ASSERT_EQ(spans_a[i], spans_b[i])
        << "span " << i << " diverged between identical runs: ("
        << std::get<0>(spans_a[i]) << ", " << std::get<1>(spans_a[i]) << ", "
        << std::get<2>(spans_a[i]) << ") vs (" << std::get<0>(spans_b[i])
        << ", " << std::get<1>(spans_b[i]) << ", "
        << std::get<2>(spans_b[i]) << ")";
  }
  EXPECT_EQ(counters_a, counters_b)
      << "counter deltas diverged between identical runs";

  // The workload engages both pipeline paths, so the trace must carry the
  // full stage taxonomy.
  for (const char* name : {"pack", "factor", "writeback", "factor_batch"}) {
    EXPECT_TRUE(std::any_of(spans_a.begin(), spans_a.end(),
                            [&](const SpanKey& k) {
                              return std::get<0>(k) == name;
                            }))
        << "expected at least one '" << name << "' span";
  }
}

// The exported artifacts of two identical runs are byte-identical after
// the same normalization — this is the property a replay harness built on
// the JSONL export relies on. Normalizing JSONL lines: drop ts_ns and tid.
TEST(ObsReplay, JsonlExportReplaysAfterNormalization) {
  if (!obs::kEnabled) {
    GTEST_SKIP() << "observability layer compiled out (IBCHOL_OBS=OFF)";
  }
  auto normalized_jsonl = [] {
    const std::string jsonl = obs::trace_jsonl(obs::collect_spans());
    std::vector<std::string> lines;
    std::size_t pos = 0;
    while (pos < jsonl.size()) {
      const std::size_t eol = jsonl.find('\n', pos);
      std::string line = jsonl.substr(pos, eol - pos);
      pos = eol + 1;
      const std::size_t ts = line.find(", \"ts_ns\":");
      if (ts != std::string::npos) line.resize(ts);  // ts/dur/tid trail
      lines.push_back(std::move(line));
    }
    std::sort(lines.begin(), lines.end());
    return lines;
  };
  (void)traced_run();
  const std::vector<std::string> a = normalized_jsonl();
  (void)traced_run();
  const std::vector<std::string> b = normalized_jsonl();
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace ibchol
