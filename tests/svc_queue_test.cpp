// Tests for the service's lock-free primitives: the Vyukov MPMC submission
// queue and the Chase-Lev work-stealing deque. The single-threaded tests
// pin the sequential semantics (FIFO/LIFO order, full/empty edges); the
// multi-threaded tests are exactly-once stress runs that double as the
// TSAN workload for check.sh --tsan.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "svc/mpmc_queue.hpp"
#include "svc/work_deque.hpp"

namespace ibchol::svc {
namespace {

TEST(MpmcQueue, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MpmcQueue<int>(1).capacity(), 2u);
  EXPECT_EQ(MpmcQueue<int>(2).capacity(), 2u);
  EXPECT_EQ(MpmcQueue<int>(3).capacity(), 4u);
  EXPECT_EQ(MpmcQueue<int>(256).capacity(), 256u);
  EXPECT_EQ(MpmcQueue<int>(257).capacity(), 512u);
}

TEST(MpmcQueue, FifoOrderSingleThread) {
  MpmcQueue<int> q(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.try_push(i));
  int v = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(q.try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(q.try_pop(v));
}

TEST(MpmcQueue, FullAndEmptyEdges) {
  MpmcQueue<int> q(4);
  int v = -1;
  EXPECT_FALSE(q.try_pop(v));  // empty from the start
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.try_push(i));
  EXPECT_FALSE(q.try_push(99));  // full
  ASSERT_TRUE(q.try_pop(v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(q.try_push(99));  // one slot free again
  // Drain: 1, 2, 3, 99.
  std::vector<int> rest;
  while (q.try_pop(v)) rest.push_back(v);
  EXPECT_EQ(rest, (std::vector<int>{1, 2, 3, 99}));
}

TEST(MpmcQueue, WrapsAroundManyLaps) {
  MpmcQueue<std::int64_t> q(4);
  std::int64_t v = -1;
  for (std::int64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(q.try_push(i));
    ASSERT_TRUE(q.try_pop(v));
    EXPECT_EQ(v, i);
  }
}

// The test-only start-position constructor fast-forwards the sequence
// counters, making lap boundaries that would take billions of operations
// reachable in a handful: a fresh queue at lap N must be indistinguishable
// from one that really did N pushes and pops.
TEST(MpmcQueue, StartPosQueueBehavesLikeFresh) {
  const std::int64_t start = std::int64_t{1} << 40;  // multiple of cap = 4
  MpmcQueue<int> q(4, start);
  int v = -1;
  EXPECT_FALSE(q.try_pop(v));  // empty at the boundary
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.try_push(i));
  EXPECT_FALSE(q.try_push(99));  // full exactly at capacity
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(q.try_pop(v));
}

TEST(MpmcQueue, FifoAcrossManyLapsFromLargeStartPos) {
  const std::int64_t start = (std::int64_t{1} << 56);
  MpmcQueue<std::int64_t> q(8, start);
  // Interleaved push/pop streams cross the ring boundary repeatedly with
  // partial occupancy, so cell sequence numbers pass through every
  // "same-index, different-lap" case near the huge start position.
  std::int64_t pushed = 0;
  std::int64_t popped = 0;
  std::int64_t v = -1;
  for (int round = 0; round < 200; ++round) {
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(q.try_push(pushed));
      ++pushed;
    }
    for (int i = 0; i < (round % 2 == 0 ? 2 : 4); ++i) {
      if (popped == pushed) break;
      ASSERT_TRUE(q.try_pop(v));
      EXPECT_EQ(v, popped);
      ++popped;
    }
  }
  while (popped < pushed) {
    ASSERT_TRUE(q.try_pop(v));
    EXPECT_EQ(v, popped);
    ++popped;
  }
}

TEST(MpmcQueue, ConcurrentExactlyOnceAtSequenceBoundary) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  // Start a few ops short of a power-of-two lap boundary so the contended
  // phase spans the wrap itself.
  const std::int64_t start = (std::int64_t{1} << 48) - 64;  // 64 = multiple
  MpmcQueue<std::int64_t> q(64, start);
  std::atomic<int> producers_left{kThreads};
  std::atomic<std::int64_t> popped_sum{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kThreads; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::int64_t v =
            static_cast<std::int64_t>(p) * kPerThread + i;
        while (!q.try_push(v)) std::this_thread::yield();
      }
      producers_left.fetch_sub(1, std::memory_order_release);
    });
  }
  for (int c = 0; c < kThreads; ++c) {
    threads.emplace_back([&] {
      std::int64_t v;
      std::int64_t local = 0;
      for (;;) {
        if (q.try_pop(v)) {
          local += v;
        } else if (producers_left.load(std::memory_order_acquire) == 0) {
          if (!q.try_pop(v)) break;
          local += v;
        } else {
          std::this_thread::yield();
        }
      }
      popped_sum.fetch_add(local, std::memory_order_relaxed);
    });
  }
  for (auto& t : threads) t.join();
  const std::int64_t total = std::int64_t{kThreads} * kPerThread;
  EXPECT_EQ(popped_sum.load(), total * (total - 1) / 2);
}

// N producers × N consumers, every pushed value popped exactly once.
TEST(MpmcQueue, ConcurrentExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 20000;
  MpmcQueue<std::int64_t> q(64);  // small: forces full/empty contention
  std::atomic<int> producers_left{kProducers};
  std::vector<std::vector<std::int64_t>> popped(kConsumers);

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const std::int64_t v = static_cast<std::int64_t>(p) * kPerProducer + i;
        while (!q.try_push(v)) std::this_thread::yield();
      }
      producers_left.fetch_sub(1, std::memory_order_release);
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&, c] {
      std::int64_t v;
      for (;;) {
        if (q.try_pop(v)) {
          popped[c].push_back(v);
        } else if (producers_left.load(std::memory_order_acquire) == 0) {
          if (!q.try_pop(v)) break;  // drained after the last producer
          popped[c].push_back(v);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  std::vector<std::int64_t> all;
  for (const auto& vec : popped) all.insert(all.end(), vec.begin(), vec.end());
  ASSERT_EQ(all.size(),
            static_cast<std::size_t>(kProducers) * kPerProducer);
  std::sort(all.begin(), all.end());
  for (std::size_t i = 0; i < all.size(); ++i) {
    ASSERT_EQ(all[i], static_cast<std::int64_t>(i));
  }
}

TEST(UnitTaskPacking, RoundTripsBoundaryValues) {
  const UnitTask cases[] = {
      {0, 0, 0},
      {0, 0, 1},
      {kMaxSlots - 1, 0, kMaxUnits - 1},
      {12345, 7, 4096},
      {1, kMaxUnits - 2, kMaxUnits - 1},
  };
  for (const UnitTask& t : cases) {
    const UnitTask r = unpack_task(pack_task(t));
    EXPECT_EQ(r.slot, t.slot);
    EXPECT_EQ(r.begin, t.begin);
    EXPECT_EQ(r.end, t.end);
  }
}

TEST(WorkDeque, OwnerLifoThiefFifo) {
  WorkDeque d(8);
  for (std::int64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(d.push({0, i, i + 1}));
  }
  UnitTask t;
  // Owner pops the newest...
  ASSERT_TRUE(d.pop(t));
  EXPECT_EQ(t.begin, 3);
  // ...a thief steals the oldest.
  ASSERT_TRUE(d.steal(t));
  EXPECT_EQ(t.begin, 0);
  ASSERT_TRUE(d.steal(t));
  EXPECT_EQ(t.begin, 1);
  ASSERT_TRUE(d.pop(t));
  EXPECT_EQ(t.begin, 2);
  EXPECT_FALSE(d.pop(t));
  EXPECT_FALSE(d.steal(t));
  EXPECT_TRUE(d.empty_approx());
}

TEST(WorkDeque, PushFailsWhenFull) {
  WorkDeque d(2);
  EXPECT_TRUE(d.push({0, 0, 1}));
  EXPECT_TRUE(d.push({0, 1, 2}));
  EXPECT_FALSE(d.push({0, 2, 3}));
  UnitTask t;
  ASSERT_TRUE(d.pop(t));
  EXPECT_TRUE(d.push({0, 2, 3}));
}

// Owner pushes/pops while thieves hammer steal; every task is executed
// exactly once (the sum of all task sizes is conserved).
TEST(WorkDeque, ConcurrentStealExactlyOnce) {
  constexpr int kThieves = 3;
  constexpr std::int64_t kTasks = 50000;
  WorkDeque d(512);
  std::atomic<bool> done{false};
  std::atomic<std::int64_t> stolen_sum{0};

  std::vector<std::thread> thieves;
  for (int i = 0; i < kThieves; ++i) {
    thieves.emplace_back([&] {
      UnitTask t;
      std::int64_t local = 0;
      while (!done.load(std::memory_order_acquire)) {
        if (d.steal(t)) local += t.size();
      }
      while (d.steal(t)) local += t.size();  // final drain
      stolen_sum.fetch_add(local, std::memory_order_relaxed);
    });
  }

  // Owner: push batches, pop some back — the classic producer pattern.
  // Conservation invariant: every unit pushed is consumed exactly once,
  // either by an owner pop or by a thief steal.
  std::int64_t pushed_sum = 0;
  std::int64_t popped_sum = 0;
  UnitTask t;
  for (std::int64_t i = 0; i < kTasks; ++i) {
    const std::int64_t size = 1 + (i % 7);
    // (begin, end) only need to pack; reuse small in-range values.
    const std::int64_t begin = i % 1024;
    if (d.push({0, begin, begin + size})) pushed_sum += size;
    if (i % 3 == 0 && d.pop(t)) popped_sum += t.size();
  }
  while (d.pop(t)) popped_sum += t.size();
  done.store(true, std::memory_order_release);
  for (auto& th : thieves) th.join();

  EXPECT_EQ(popped_sum + stolen_sum.load(), pushed_sum);
}

}  // namespace
}  // namespace ibchol::svc
