// Tests for the occupancy calculator against known CUDA limits.
#include <gtest/gtest.h>

#include "simt/occupancy.hpp"
#include "util/error.hpp"

namespace ibchol {
namespace {

TEST(Occupancy, LightweightKernelHitsBlockLimit) {
  // 32-thread blocks with few registers: P100 caps at 32 blocks/SM.
  const GpuSpec gpu = GpuSpec::p100();
  const Occupancy occ = compute_occupancy(gpu, {32, 16, 0});
  EXPECT_EQ(occ.blocks_per_sm, 32);
  EXPECT_EQ(occ.warps_per_sm, 32);
  EXPECT_STREQ(occ.limiter, "blocks");
}

TEST(Occupancy, FullThreadsFullWarps) {
  // 1024-thread blocks, 32 regs/thread: 2 blocks = 2048 threads = 64 warps.
  const GpuSpec gpu = GpuSpec::p100();
  const Occupancy occ = compute_occupancy(gpu, {1024, 32, 0});
  EXPECT_EQ(occ.blocks_per_sm, 2);
  EXPECT_EQ(occ.warps_per_sm, 64);
  EXPECT_DOUBLE_EQ(occ.occupancy, 1.0);
}

TEST(Occupancy, RegisterLimited) {
  // 255 regs/thread, 256-thread blocks: regs/warp = 8160 -> granule 8192;
  // per block 65536 regs = whole SM -> 1 block.
  const GpuSpec gpu = GpuSpec::p100();
  const Occupancy occ = compute_occupancy(gpu, {256, 255, 0});
  EXPECT_EQ(occ.blocks_per_sm, 1);
  EXPECT_STREQ(occ.limiter, "registers");
}

TEST(Occupancy, RegisterDemandExceedingSmCannotLaunch) {
  // 1024 threads x 255 regs ~ 261K regs > 64K: zero blocks.
  const GpuSpec gpu = GpuSpec::p100();
  const Occupancy occ = compute_occupancy(gpu, {1024, 255, 0});
  EXPECT_EQ(occ.blocks_per_sm, 0);
  EXPECT_EQ(occ.warps_per_sm, 0);
}

TEST(Occupancy, SharedMemoryLimited) {
  // 33 KB of shared memory per block on a 64 KB SM: 1 block.
  const GpuSpec gpu = GpuSpec::p100();
  const Occupancy occ = compute_occupancy(gpu, {64, 32, 33 * 1024});
  EXPECT_EQ(occ.blocks_per_sm, 1);
  EXPECT_STREQ(occ.limiter, "smem");
}

TEST(Occupancy, ThreadLimited) {
  // 2048-thread cap with 512-thread blocks and tiny footprint: 4 blocks.
  const GpuSpec gpu = GpuSpec::p100();
  const Occupancy occ = compute_occupancy(gpu, {512, 8, 0});
  EXPECT_EQ(occ.blocks_per_sm, 4);
  EXPECT_EQ(occ.warps_per_sm, 64);
}

TEST(Occupancy, WarpGranularityRoundsUp) {
  // 48-thread blocks occupy 2 warps.
  const GpuSpec gpu = GpuSpec::p100();
  const Occupancy occ = compute_occupancy(gpu, {48, 16, 0});
  EXPECT_EQ(occ.warps_per_sm, occ.blocks_per_sm * 2);
}

TEST(Occupancy, RejectsBadInputs) {
  const GpuSpec gpu = GpuSpec::p100();
  EXPECT_THROW((void)compute_occupancy(gpu, {0, 32, 0}), Error);
  EXPECT_THROW((void)compute_occupancy(gpu, {32, -1, 0}), Error);
}

TEST(Occupancy, K40SpecDiffers) {
  const GpuSpec k40 = GpuSpec::k40();
  // K40 allows only 16 blocks/SM.
  const Occupancy occ = compute_occupancy(k40, {32, 16, 0});
  EXPECT_EQ(occ.blocks_per_sm, 16);
}

TEST(GpuSpec, PeakFlopsP100) {
  const GpuSpec gpu = GpuSpec::p100();
  // 56 SMs x 64 cores x 2 flops x 1.48 GHz ~ 10.6 TFLOP/s.
  EXPECT_NEAR(gpu.peak_fp32_flops() / 1e12, 10.6, 0.2);
}

}  // namespace
}  // namespace ibchol
