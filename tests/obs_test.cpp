// Unit tests of the observability layer: span recording and session
// semantics, ring-buffer overflow accounting, the named-counter registry,
// both exporters, and the graceful degradation of the hardware counters.
//
// Everything that needs a live trace session is skipped (not failed) when
// the layer is compiled out (IBCHOL_OBS=OFF) — the OFF build still runs
// this binary, and the skip marker documents which configuration ran.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/counters.hpp"
#include "obs/perf_counters.hpp"
#include "obs/trace.hpp"

namespace ibchol::obs {
namespace {

#define SKIP_IF_OBS_OFF()                                             \
  if (!kEnabled) GTEST_SKIP() << "observability layer compiled out "  \
                                 "(IBCHOL_OBS=OFF)"

TEST(Trace, ScopeRecordsWhileSessionActive) {
  SKIP_IF_OBS_OFF();
  start_tracing();
  {
    TraceScope scope("unit_span", "test", 7);
  }
  stop_tracing();
  const std::vector<TraceSpan> spans = collect_spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "unit_span");
  EXPECT_STREQ(spans[0].cat, "test");
  EXPECT_EQ(spans[0].arg, 7);
}

TEST(Trace, InactiveScopeRecordsNothing) {
  SKIP_IF_OBS_OFF();
  start_tracing();
  stop_tracing();  // drains the previous test's session, nothing active
  {
    TraceScope scope("should_not_appear", "test");
  }
  EXPECT_TRUE(collect_spans().empty());
  EXPECT_FALSE(tracing_active());
}

TEST(Trace, StartTracingDiscardsPreviousSession) {
  SKIP_IF_OBS_OFF();
  start_tracing();
  record_span("old", "test", -1, now_ns(), 10);
  stop_tracing();
  start_tracing();
  record_span("new", "test", -1, now_ns(), 10);
  stop_tracing();
  const std::vector<TraceSpan> spans = collect_spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "new");
}

TEST(Trace, RingOverflowDropsOldestAndCounts) {
  SKIP_IF_OBS_OFF();
  constexpr std::uint64_t kExtra = 100;
  start_tracing();
  for (std::uint64_t i = 0; i < kRingCapacity + kExtra; ++i) {
    record_span("flood", "test", static_cast<std::int64_t>(i), now_ns(), 1);
  }
  stop_tracing();
  const std::vector<TraceSpan> spans = collect_spans();
  ASSERT_EQ(spans.size(), kRingCapacity);
  EXPECT_EQ(dropped_spans(), kExtra);
  // Oldest-first order: the survivors are the last kRingCapacity records.
  EXPECT_EQ(spans.front().arg, static_cast<std::int64_t>(kExtra));
  EXPECT_EQ(spans.back().arg,
            static_cast<std::int64_t>(kRingCapacity + kExtra - 1));
}

TEST(Trace, ChromeExportContainsSpansAndCounters) {
  SKIP_IF_OBS_OFF();
  reset_counters();
  counter("test.export_marker").add(3);
  start_tracing();
  record_span("exported", "test", 5, now_ns(), 1000);
  stop_tracing();
  const std::string json = chrome_trace_json(collect_spans());
  EXPECT_NE(json.find("\"name\": \"exported\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("test.export_marker"), std::string::npos);
  EXPECT_NE(json.find("\"dropped_spans\": 0"), std::string::npos);
}

TEST(Trace, JsonlExportOneLinePerSpanPlusTrailer) {
  SKIP_IF_OBS_OFF();
  start_tracing();
  record_span("a", "test", 1, now_ns(), 1);
  record_span("b", "test", 2, now_ns(), 1);
  stop_tracing();
  const std::string jsonl = trace_jsonl(collect_spans());
  std::istringstream is(jsonl);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(is, line)) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    ++lines;
  }
  EXPECT_EQ(lines, 3u);  // two spans + counters trailer
  EXPECT_NE(jsonl.find("\"counters\""), std::string::npos);
}

TEST(Trace, ExportTraceWritesFileByExtension) {
  SKIP_IF_OBS_OFF();
  start_tracing();
  record_span("file_span", "test", -1, now_ns(), 1);
  stop_tracing();
  const std::string path = ::testing::TempDir() + "/obs_test_trace.jsonl";
  ASSERT_TRUE(export_trace(path));
  std::ifstream f(path);
  std::string first;
  ASSERT_TRUE(std::getline(f, first));
  EXPECT_NE(first.find("file_span"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Trace, ExportTraceFailsWhenCompiledOut) {
  if (kEnabled) GTEST_SKIP() << "only meaningful with IBCHOL_OBS=OFF";
  EXPECT_FALSE(tracing_active());
  EXPECT_FALSE(export_trace(::testing::TempDir() + "/never_written.json"));
}

// ----------------------------------------------------------- counters ----

TEST(Counters, RegistryAccumulatesAndResets) {
  reset_counters();
  counter("test.alpha").add(2);
  counter("test.alpha").add(3);
  counter("test.beta").add(1);
  EXPECT_EQ(counter_value("test.alpha"), 5u);
  EXPECT_EQ(counter_value("test.beta"), 1u);
  EXPECT_EQ(counter_value("test.never_touched"), 0u);
  reset_counters();
  EXPECT_EQ(counter_value("test.alpha"), 0u);
}

TEST(Counters, SnapshotIsSortedByName) {
  reset_counters();
  counter("test.zz").add(1);
  counter("test.aa").add(1);
  const auto snap = counters_snapshot();
  ASSERT_GE(snap.size(), 2u);
  for (std::size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].first, snap[i].first);
  }
}

TEST(Counters, CountMacroCompilesInBothModes) {
  reset_counters();
  IBCHOL_COUNT("test.macro", 4);
  IBCHOL_COUNT("test.macro", 1);
  // With the layer off the macro expands to nothing and the value is 0.
  EXPECT_EQ(counter_value("test.macro"), kEnabled ? 5u : 0u);
}

// ------------------------------------------------------- hw counters -----

// perf_event availability depends on the kernel and the container
// (perf_event_paranoid / seccomp commonly deny it); the contract is
// graceful degradation, never an error. Both branches are legitimate
// outcomes of this test.
TEST(HwCountersTest, DegradesGracefullyOrMeasures) {
  HwCounters hw;
  hw.start();
  volatile double sink = 1.0;
  for (int i = 0; i < 100000; ++i) sink = sink * 1.0000001 + 0.5;
  const HwSample s = hw.stop();
  if (hw.available()) {
    ASSERT_TRUE(s.valid);
    EXPECT_GT(s.cycles, 0u);
    EXPECT_GT(s.instructions, 0u);
    EXPECT_GT(s.ipc(), 0.0);
  } else {
    EXPECT_FALSE(s.valid);
    EXPECT_EQ(s.ipc(), 0.0);
  }
}

TEST(HwCountersTest, StopWithoutStartIsSafe) {
  HwCounters hw;
  const HwSample s = hw.stop();
  if (!hw.available()) EXPECT_FALSE(s.valid);
}

}  // namespace
}  // namespace ibchol::obs
