// Unit tests of the observability layer: span recording and session
// semantics, ring-buffer overflow accounting, the named-counter registry,
// both exporters, and the graceful degradation of the hardware counters.
//
// Everything that needs a live trace session is skipped (not failed) when
// the layer is compiled out (IBCHOL_OBS=OFF) — the OFF build still runs
// this binary, and the skip marker documents which configuration ran.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/perf_counters.hpp"
#include "obs/trace.hpp"

namespace ibchol::obs {
namespace {

#define SKIP_IF_OBS_OFF()                                             \
  if (!kEnabled) GTEST_SKIP() << "observability layer compiled out "  \
                                 "(IBCHOL_OBS=OFF)"

TEST(Trace, ScopeRecordsWhileSessionActive) {
  SKIP_IF_OBS_OFF();
  start_tracing();
  {
    TraceScope scope("unit_span", "test", 7);
  }
  stop_tracing();
  const std::vector<TraceSpan> spans = collect_spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "unit_span");
  EXPECT_STREQ(spans[0].cat, "test");
  EXPECT_EQ(spans[0].arg, 7);
}

TEST(Trace, InactiveScopeRecordsNothing) {
  SKIP_IF_OBS_OFF();
  start_tracing();
  stop_tracing();  // drains the previous test's session, nothing active
  {
    TraceScope scope("should_not_appear", "test");
  }
  EXPECT_TRUE(collect_spans().empty());
  EXPECT_FALSE(tracing_active());
}

TEST(Trace, StartTracingDiscardsPreviousSession) {
  SKIP_IF_OBS_OFF();
  start_tracing();
  record_span("old", "test", -1, now_ns(), 10);
  stop_tracing();
  start_tracing();
  record_span("new", "test", -1, now_ns(), 10);
  stop_tracing();
  const std::vector<TraceSpan> spans = collect_spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "new");
}

TEST(Trace, RingOverflowDropsOldestAndCounts) {
  SKIP_IF_OBS_OFF();
  constexpr std::uint64_t kExtra = 100;
  start_tracing();
  for (std::uint64_t i = 0; i < kRingCapacity + kExtra; ++i) {
    record_span("flood", "test", static_cast<std::int64_t>(i), now_ns(), 1);
  }
  stop_tracing();
  const std::vector<TraceSpan> spans = collect_spans();
  ASSERT_EQ(spans.size(), kRingCapacity);
  EXPECT_EQ(dropped_spans(), kExtra);
  // Oldest-first order: the survivors are the last kRingCapacity records.
  EXPECT_EQ(spans.front().arg, static_cast<std::int64_t>(kExtra));
  EXPECT_EQ(spans.back().arg,
            static_cast<std::int64_t>(kRingCapacity + kExtra - 1));
}

TEST(Trace, ChromeExportContainsSpansAndCounters) {
  SKIP_IF_OBS_OFF();
  reset_counters();
  counter("test.export_marker").add(3);
  start_tracing();
  record_span("exported", "test", 5, now_ns(), 1000);
  stop_tracing();
  const std::string json = chrome_trace_json(collect_spans());
  EXPECT_NE(json.find("\"name\": \"exported\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("test.export_marker"), std::string::npos);
  EXPECT_NE(json.find("\"dropped_spans\": 0"), std::string::npos);
}

TEST(Trace, JsonlExportOneLinePerSpanPlusTrailer) {
  SKIP_IF_OBS_OFF();
  start_tracing();
  record_span("a", "test", 1, now_ns(), 1);
  record_span("b", "test", 2, now_ns(), 1);
  stop_tracing();
  const std::string jsonl = trace_jsonl(collect_spans());
  std::istringstream is(jsonl);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(is, line)) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    ++lines;
  }
  EXPECT_EQ(lines, 3u);  // two spans + counters trailer
  EXPECT_NE(jsonl.find("\"counters\""), std::string::npos);
}

TEST(Trace, ExportTraceWritesFileByExtension) {
  SKIP_IF_OBS_OFF();
  start_tracing();
  record_span("file_span", "test", -1, now_ns(), 1);
  stop_tracing();
  const std::string path = ::testing::TempDir() + "/obs_test_trace.jsonl";
  ASSERT_TRUE(export_trace(path));
  std::ifstream f(path);
  std::string first;
  ASSERT_TRUE(std::getline(f, first));
  EXPECT_NE(first.find("file_span"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Trace, ExportTraceFailsWhenCompiledOut) {
  if (kEnabled) GTEST_SKIP() << "only meaningful with IBCHOL_OBS=OFF";
  EXPECT_FALSE(tracing_active());
  EXPECT_FALSE(export_trace(::testing::TempDir() + "/never_written.json"));
}

// ----------------------------------------------------------- counters ----

TEST(Counters, RegistryAccumulatesAndResets) {
  reset_counters();
  counter("test.alpha").add(2);
  counter("test.alpha").add(3);
  counter("test.beta").add(1);
  EXPECT_EQ(counter_value("test.alpha"), 5u);
  EXPECT_EQ(counter_value("test.beta"), 1u);
  EXPECT_EQ(counter_value("test.never_touched"), 0u);
  reset_counters();
  EXPECT_EQ(counter_value("test.alpha"), 0u);
}

TEST(Counters, SnapshotIsSortedByName) {
  reset_counters();
  counter("test.zz").add(1);
  counter("test.aa").add(1);
  const auto snap = counters_snapshot();
  ASSERT_GE(snap.size(), 2u);
  for (std::size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].first, snap[i].first);
  }
}

TEST(Counters, CountMacroCompilesInBothModes) {
  reset_counters();
  IBCHOL_COUNT("test.macro", 4);
  IBCHOL_COUNT("test.macro", 1);
  // With the layer off the macro expands to nothing and the value is 0.
  EXPECT_EQ(counter_value("test.macro"), kEnabled ? 5u : 0u);
}

// ------------------------------------------------------- hw counters -----

// perf_event availability depends on the kernel and the container
// (perf_event_paranoid / seccomp commonly deny it); the contract is
// graceful degradation, never an error. Both branches are legitimate
// outcomes of this test.
TEST(HwCountersTest, DegradesGracefullyOrMeasures) {
  HwCounters hw;
  hw.start();
  volatile double sink = 1.0;
  for (int i = 0; i < 100000; ++i) sink = sink * 1.0000001 + 0.5;
  const HwSample s = hw.stop();
  if (hw.available()) {
    ASSERT_TRUE(s.valid);
    EXPECT_GT(s.cycles, 0u);
    EXPECT_GT(s.instructions, 0u);
    EXPECT_GT(s.ipc(), 0.0);
  } else {
    EXPECT_FALSE(s.valid);
    EXPECT_EQ(s.ipc(), 0.0);
  }
}

TEST(HwCountersTest, StopWithoutStartIsSafe) {
  HwCounters hw;
  const HwSample s = hw.stop();
  if (!hw.available()) EXPECT_FALSE(s.valid);
}

TEST(HistogramTest, EmptySnapshotIsAllZero) {
  Histogram h;
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 0u);
  EXPECT_EQ(s.p50, 0.0);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(HistogramTest, CountSumMinMaxAreExact) {
  Histogram h;
  for (std::uint64_t v : {5u, 100u, 3u, 1000000u, 42u}) h.record(v);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(s.sum, 5u + 100u + 3u + 1000000u + 42u);
  EXPECT_EQ(s.min, 3u);
  EXPECT_EQ(s.max, 1000000u);
  EXPECT_DOUBLE_EQ(s.mean(), static_cast<double>(s.sum) / 5.0);
}

TEST(HistogramTest, SmallValuesHaveExactBuckets) {
  // 0..7 map to dedicated buckets: quantiles on small values are exact.
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(static_cast<std::uint64_t>(i % 8));
  const HistogramSnapshot s = h.snapshot();
  EXPECT_DOUBLE_EQ(s.p50, 3.0);  // uniform over 0..7: median bucket is 3
}

TEST(HistogramTest, BucketIndexIsMonotoneAndCovering) {
  int prev = -1;
  for (std::uint64_t v = 0; v < 10000; ++v) {
    const int b = Histogram::bucket_of(v);
    ASSERT_GE(b, prev);  // never decreases
    ASSERT_LT(b, Histogram::kNumBuckets);
    prev = b;
  }
  // The extremes stay in range.
  EXPECT_LT(Histogram::bucket_of(~std::uint64_t{0}), Histogram::kNumBuckets);
  EXPECT_EQ(Histogram::bucket_of(0), 0);
}

TEST(HistogramTest, BucketMidFallsInsideItsOwnBucket) {
  for (int b = 0; b < Histogram::kNumBuckets; ++b) {
    const double mid = Histogram::bucket_mid(b);
    // Above 2^53 a double cannot represent the midpoint exactly and the
    // round trip may land one bucket off; quantiles at that magnitude
    // (three-month latencies in ns) are approximate anyway.
    if (mid >= 9.0e15) continue;
    EXPECT_EQ(Histogram::bucket_of(static_cast<std::uint64_t>(mid)), b)
        << "bucket " << b;
  }
}

TEST(HistogramTest, QuantileRelativeErrorBounded) {
  // A known distribution: 1000 samples at each of several magnitudes.
  Histogram h;
  const std::uint64_t values[] = {1000, 10000, 100000, 1000000};
  for (std::uint64_t v : values) {
    for (int i = 0; i < 1000; ++i) h.record(v);
  }
  const HistogramSnapshot s = h.snapshot();
  // p50 = 2000th of 4000 samples → within one bucket of 10000.
  EXPECT_NEAR(s.p50, 10000.0, 10000.0 / 16.0);
  EXPECT_NEAR(s.p90, 1000000.0, 1000000.0 / 16.0);
  EXPECT_NEAR(s.p95, 1000000.0, 1000000.0 / 16.0);
  EXPECT_NEAR(s.p99, 1000000.0, 1000000.0 / 16.0);
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h;
  h.record(12345);
  h.reset();
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 0u);
  // Usable after reset.
  h.record(7);
  EXPECT_EQ(h.snapshot().count, 1u);
  EXPECT_EQ(h.snapshot().min, 7u);
}

TEST(HistogramTest, RegistryNamesAndSorting) {
  reset_histograms();
  histogram("zz.second").record(2);
  histogram("aa.first").record(1);
  histogram("aa.first").record(3);  // same histogram, by reference
  const auto snap = histograms_snapshot();
  ASSERT_GE(snap.size(), 2u);
  // Sorted by name; our two entries in order with accumulated counts.
  std::uint64_t aa_count = 0, zz_count = 0;
  std::size_t aa_pos = 0, zz_pos = 0;
  for (std::size_t i = 0; i < snap.size(); ++i) {
    if (snap[i].first == "aa.first") { aa_count = snap[i].second.count; aa_pos = i; }
    if (snap[i].first == "zz.second") { zz_count = snap[i].second.count; zz_pos = i; }
  }
  EXPECT_EQ(aa_count, 2u);
  EXPECT_EQ(zz_count, 1u);
  EXPECT_LT(aa_pos, zz_pos);
  reset_histograms();
}

TEST(HistogramTest, ConcurrentRecordingLosesNothing) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record(static_cast<std::uint64_t>(i));
      }
    });
  }
  for (auto& t : threads) t.join();
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, kPerThread - 1u);
}

TEST(HistogramTest, ExportersAttachHistogramSnapshot) {
  SKIP_IF_OBS_OFF();
  reset_histograms();
  histogram("test.latency_ns").record(1234);
  start_tracing();
  record_span("a", "test", 1, now_ns(), 1);
  stop_tracing();
  const std::string jsonl = trace_jsonl(collect_spans());
  EXPECT_NE(jsonl.find("\"histograms\""), std::string::npos);
  EXPECT_NE(jsonl.find("test.latency_ns"), std::string::npos);
  // Still one line per span plus exactly one trailer line.
  std::istringstream is(jsonl);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(is, line)) ++lines;
  EXPECT_EQ(lines, 2u);  // one span + trailer
  const std::string chrome = chrome_trace_json(collect_spans());
  EXPECT_NE(chrome.find("\"histograms\""), std::string::npos);
  reset_histograms();
}

}  // namespace
}  // namespace ibchol::obs
