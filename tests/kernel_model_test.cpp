// Tests for the SIMT kernel cost model: the paper's qualitative findings
// must hold as model invariants.
#include <gtest/gtest.h>

#include "simt/kernel_model.hpp"

namespace ibchol {
namespace {

class ModelTest : public ::testing::Test {
 protected:
  KernelModel model_{GpuSpec::p100()};
  static constexpr std::int64_t kBatch = 16384;

  double gflops(int n, TuningParams p) {
    return model_.evaluate(n, kBatch, p).gflops;
  }

  static TuningParams base() {
    TuningParams p;
    p.nb = 8;
    p.looking = Looking::kTop;
    p.chunked = true;
    p.chunk_size = 64;
    p.unroll = Unroll::kPartial;
    return p;
  }
};

TEST_F(ModelTest, DeterministicEvaluation) {
  const auto a = model_.evaluate(24, kBatch, base());
  const auto b = model_.evaluate(24, kBatch, base());
  EXPECT_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.gflops, b.gflops);
}

TEST_F(ModelTest, SaneOutputs) {
  const ModelResult r = model_.evaluate(32, kBatch, base());
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_GT(r.gflops, 0.0);
  EXPECT_LT(r.gflops * 1e9, model_.gpu().peak_fp32_flops());
  EXPECT_GT(r.dram_read_bytes, 0.0);
  EXPECT_GT(r.dram_write_bytes, 0.0);
  EXPECT_GT(r.occ.warps_per_sm, 0);
  EXPECT_GE(r.icache_penalty, 1.0);
}

// Paper conclusion 1: interleaved chunked beats non-chunked everywhere.
TEST_F(ModelTest, ChunkingAlwaysHelps) {
  for (const int n : {4, 8, 16, 24, 32, 48, 64}) {
    TuningParams chunked = base();
    TuningParams simple = base();
    simple.chunked = false;
    EXPECT_GT(gflops(n, chunked), gflops(n, simple)) << "n=" << n;
  }
}

// Paper conclusion 2 (Fig 15): past n~40, larger tiles win; nb=1 is
// memory-bound and collapses.
TEST_F(ModelTest, TilingMattersForLargeN) {
  TuningParams p = base();
  const int n = 48;
  p.nb = 1;
  const double g1 = gflops(n, p);
  p.nb = 4;
  const double g4 = gflops(n, p);
  p.nb = 8;
  const double g8 = gflops(n, p);
  EXPECT_GT(g8, g4);
  EXPECT_GT(g4, g1);
  EXPECT_GT(g8, 2.0 * g1);  // the collapse is dramatic
}

// Fig 15: below n~20 tiling makes no difference for the best (fully
// unrolled, register-promoted) kernels.
TEST_F(ModelTest, TilingIrrelevantForSmallN) {
  TuningParams p = base();
  p.unroll = Unroll::kFull;
  const int n = 12;
  p.nb = 1;
  const double g1 = gflops(n, p);
  p.nb = 4;
  const double g4 = gflops(n, p);
  EXPECT_NEAR(g1 / g4, 1.0, 0.05);
}

// Fig 16: the lazier the looking order, the faster (fewer writes),
// at sizes where tiles actually move through memory.
TEST_F(ModelTest, LookingOrderTopBeatsLeftBeatsRight) {
  TuningParams p = base();
  const int n = 48;
  p.looking = Looking::kTop;
  const double top = gflops(n, p);
  p.looking = Looking::kLeft;
  const double left = gflops(n, p);
  p.looking = Looking::kRight;
  const double right = gflops(n, p);
  EXPECT_GT(top, left);
  EXPECT_GT(left, right);
}

// Fig 18: chunk 32/64 best; 512 significantly worse.
TEST_F(ModelTest, ChunkSizeOrdering) {
  TuningParams p = base();
  const int n = 24;
  p.chunk_size = 32;
  const double c32 = gflops(n, p);
  p.chunk_size = 64;
  const double c64 = gflops(n, p);
  p.chunk_size = 512;
  const double c512 = gflops(n, p);
  EXPECT_GE(c32, c64 * 0.98);   // 32 best or tied
  EXPECT_GT(c64, c512 * 1.2);   // 512 significantly worse
}

// Fig 19: full unrolling pays off up to n~20, partial takes over later.
TEST_F(ModelTest, UnrollingCrossover) {
  TuningParams full = base();
  full.unroll = Unroll::kFull;
  TuningParams part = base();
  part.unroll = Unroll::kPartial;
  EXPECT_GT(gflops(12, full), gflops(12, part));
  EXPECT_GT(gflops(48, part), gflops(48, full));
}

// Fig 13: fast math at least as fast as IEEE, with a real gap at the
// compute-sensitive sizes.
TEST_F(ModelTest, FastMathHelps) {
  for (const int n : {8, 16, 24, 32, 48}) {
    TuningParams ieee = base();
    TuningParams fast = base();
    fast.math = MathMode::kFastMath;
    EXPECT_GE(gflops(n, fast), gflops(n, ieee)) << n;
  }
  TuningParams ieee = base();
  TuningParams fast = base();
  fast.math = MathMode::kFastMath;
  ieee.unroll = fast.unroll = Unroll::kFull;
  EXPECT_GT(gflops(20, fast), 1.1 * gflops(20, ieee));
}

// The L1-vs-shared carveout has no effect on these kernels (they use no
// shared memory) — Table I's weakest variable.
TEST_F(ModelTest, CachePreferenceIsNoise) {
  TuningParams l1 = base();
  TuningParams sh = base();
  sh.prefer_shared = true;
  EXPECT_EQ(gflops(24, l1), gflops(24, sh));
}

// ------------------------------------------------------ register model ---

TEST_F(ModelTest, PromotionFullBelowThreshold) {
  const TileProgram p = build_tile_program(16, 8, Looking::kTop);
  const RegisterEstimate est =
      model_.estimate_registers(p, Unroll::kFull, 64);
  EXPECT_DOUBLE_EQ(est.promoted_fraction, 1.0);
  EXPECT_EQ(est.spilled_regs, 0);
}

TEST_F(ModelTest, PromotionDecaysPastThreshold) {
  const TileProgram p32 = build_tile_program(32, 8, Looking::kTop);
  const RegisterEstimate e32 =
      model_.estimate_registers(p32, Unroll::kFull, 64);
  EXPECT_LT(e32.promoted_fraction, 1.0);
  EXPECT_GT(e32.promoted_fraction, 0.2);
  const TileProgram p64 = build_tile_program(64, 8, Looking::kTop);
  const RegisterEstimate e64 =
      model_.estimate_registers(p64, Unroll::kFull, 64);
  EXPECT_LT(e64.promoted_fraction, e32.promoted_fraction);
}

TEST_F(ModelTest, PartialUnrollNeverPromotes) {
  const TileProgram p = build_tile_program(8, 4, Looking::kTop);
  const RegisterEstimate est =
      model_.estimate_registers(p, Unroll::kPartial, 64);
  EXPECT_DOUBLE_EQ(est.promoted_fraction, 0.0);
}

TEST_F(ModelTest, HugeBlocksForceSpills) {
  // 512-thread blocks cap registers at 128/thread; an nb=8 three-tile
  // kernel (~206 regs) must spill.
  const TileProgram p = build_tile_program(48, 8, Looking::kTop);
  const RegisterEstimate est =
      model_.estimate_registers(p, Unroll::kPartial, 512);
  EXPECT_GT(est.spilled_regs, 0);
  EXPECT_LE(est.regs_per_thread, 128);
}

// ------------------------------------------------------------ i-cache ----

TEST_F(ModelTest, IcachePenaltyGrowsWithFullUnrollSize) {
  TuningParams p = base();
  p.unroll = Unroll::kFull;
  const auto small = model_.evaluate(16, kBatch, p);
  const auto large = model_.evaluate(64, kBatch, p);
  EXPECT_GT(large.icache_penalty, small.icache_penalty);
  EXPECT_GT(large.icache_penalty, 1.5);
}

// ------------------------------------------------------------- memory ----

TEST_F(ModelTest, MemoryTrafficScalesWithBatch) {
  const auto half = model_.evaluate(24, kBatch / 2, base());
  const auto full = model_.evaluate(24, kBatch, base());
  EXPECT_NEAR(full.dram_read_bytes / half.dram_read_bytes, 2.0, 0.01);
}

TEST_F(ModelTest, NonChunkedHasWorseDramEfficiency) {
  TuningParams simple = base();
  simple.chunked = false;
  const auto c = model_.evaluate(24, kBatch, base());
  const auto s = model_.evaluate(24, kBatch, simple);
  EXPECT_GT(c.dram_efficiency, s.dram_efficiency);
}

TEST_F(ModelTest, PromotedKernelMovesMinimalTraffic) {
  TuningParams p = base();
  p.unroll = Unroll::kFull;
  const auto r = model_.evaluate(16, kBatch, p);
  // Minimal traffic = lower triangle in + out = 136 elements each way.
  const double min_bytes = 136.0 * 4.0 * kBatch;
  EXPECT_NEAR(r.dram_read_bytes, min_bytes, min_bytes * 0.05);
  EXPECT_NEAR(r.dram_write_bytes, min_bytes, min_bytes * 0.05);
}

TEST_F(ModelTest, RejectsBadArguments) {
  EXPECT_THROW((void)model_.evaluate(0, kBatch, base()), Error);
  EXPECT_THROW((void)model_.evaluate(8, 0, base()), Error);
  TuningParams bad = base();
  bad.chunk_size = 40;
  EXPECT_THROW((void)model_.evaluate(8, kBatch, bad), Error);
}


// ------------------------------------------------- calibration guard bands

// Guard bands around the calibrated model's headline outputs: these protect
// the reproduction from silent calibration drift. Bounds are deliberately
// loose — they assert the regime, not the digit.
TEST_F(ModelTest, CalibrationGuardBands) {
  // Best-over-space IEEE performance in the paper's regimes.
  auto best = [&](int n) {
    double g = 0.0;
    TuningParams p = base();
    for (const int nb : {1, 2, 4, 8}) {
      for (const auto u : {Unroll::kPartial, Unroll::kFull}) {
        for (const int c : {32, 64}) {
          p.nb = nb;
          p.unroll = u;
          p.chunk_size = c;
          g = std::max(g, gflops(n, p));
        }
      }
    }
    return g;
  };
  const double g8 = best(8);
  const double g24 = best(24);
  const double g64 = best(64);
  EXPECT_GT(g8, 100.0);
  EXPECT_LT(g8, 400.0);
  EXPECT_GT(g24, 350.0);   // the ~500-650 plateau
  EXPECT_LT(g24, 900.0);
  EXPECT_GT(g64, 400.0);
  EXPECT_LT(g64, 1000.0);  // must not run away past the paper's level-off
}

TEST_F(ModelTest, GuardBandChunk512Penalty) {
  TuningParams best32 = base();
  best32.chunk_size = 32;
  TuningParams worst512 = base();
  worst512.chunk_size = 512;
  const double drop = 1.0 - gflops(24, worst512) / gflops(24, best32);
  EXPECT_GT(drop, 0.10);  // "significantly worse"
  EXPECT_LT(drop, 0.70);  // but still a working kernel
}

}  // namespace
}  // namespace ibchol
