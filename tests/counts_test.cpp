// Tests for exact operation counting and code-size estimation.
#include <gtest/gtest.h>

#include "kernels/counts.hpp"
#include "kernels/tile_program.hpp"

namespace ibchol {
namespace {

TileOp load_full(int r, int c) {
  return {TileOp::Kind::kLoadFull, 0, 0, 0, 0, 0, static_cast<std::int16_t>(r),
          static_cast<std::int16_t>(c), 0};
}

// ----------------------------------------------------------- per-op ------

TEST(Counts, LoadStoreElementCounts) {
  EXPECT_EQ(count_op(load_full(4, 3)).load_elems, 12);
  TileOp lower{TileOp::Kind::kLoadLower, 0, 0, 0, 0, 0, 5, 5, 0};
  EXPECT_EQ(count_op(lower).load_elems, 15);
  TileOp store{TileOp::Kind::kStoreFull, 0, 0, 0, 0, 0, 2, 7, 0};
  EXPECT_EQ(count_op(store).store_elems, 14);
  TileOp store_low{TileOp::Kind::kStoreLower, 0, 0, 0, 0, 0, 4, 4, 0};
  EXPECT_EQ(count_op(store_low).store_elems, 10);
}

// Brute-force the microkernel loop nests and compare against count_op.
TEST(Counts, PotrfMatchesBruteForce) {
  for (int r = 1; r <= 8; ++r) {
    std::int64_t sqrt = 0, div = 0, mul = 0, fma = 0;
    for (int k = 0; k < r; ++k) {
      ++sqrt;
      ++div;
      for (int m = k + 1; m < r; ++m) ++mul;
      for (int n = k + 1; n < r; ++n) {
        for (int m = n; m < r; ++m) ++fma;
      }
    }
    TileOp op{TileOp::Kind::kPotrf, 0, 0, 0, 0, 0,
              static_cast<std::int16_t>(r), static_cast<std::int16_t>(r), 0};
    const OpCounts c = count_op(op);
    EXPECT_EQ(c.sqrt, sqrt) << r;
    EXPECT_EQ(c.div, div) << r;
    EXPECT_EQ(c.mul, mul) << r;
    EXPECT_EQ(c.fma, fma) << r;
  }
}

TEST(Counts, TrsmMatchesBruteForce) {
  for (int r = 1; r <= 6; ++r) {
    for (int cc = 1; cc <= 6; ++cc) {
      std::int64_t div = 0, fma = 0;
      for (int m = 0; m < r; ++m) {
        for (int k = 0; k < cc; ++k) {
          ++div;
          for (int n = k + 1; n < cc; ++n) ++fma;
        }
      }
      TileOp op{TileOp::Kind::kTrsm, 0, 1, 0, 0, 0,
                static_cast<std::int16_t>(r), static_cast<std::int16_t>(cc),
                0};
      const OpCounts c = count_op(op);
      EXPECT_EQ(c.div, div);
      EXPECT_EQ(c.fma, fma);
    }
  }
}

TEST(Counts, SyrkAndGemmFormulas) {
  TileOp syrk{TileOp::Kind::kSyrk, 0, 1, 0, 0, 0, 4, 4, 3};
  EXPECT_EQ(count_op(syrk).fma, 3 * 4 * 5 / 2);
  TileOp gemm{TileOp::Kind::kGemm, 0, 1, 2, 0, 0, 4, 5, 3};
  EXPECT_EQ(count_op(gemm).fma, 60);
}

// ------------------------------------------------------ whole program ----

TEST(Counts, ProgramFlopsMatchFactorizationWork) {
  // Any correct Cholesky schedule performs exactly the same arithmetic:
  // n sqrts, and the same multiply/fma totals, regardless of tiling and
  // looking order (only the *memory* traffic differs).
  const int n = 24;
  const TileProgram ref = build_tile_program(n, n, Looking::kTop);
  const OpCounts base = count_program(ref);
  EXPECT_EQ(base.sqrt, n);
  for (const int nb : {1, 2, 3, 5, 8}) {
    for (const auto looking :
         {Looking::kRight, Looking::kLeft, Looking::kTop}) {
      const OpCounts c =
          count_program(build_tile_program(n, nb, looking));
      EXPECT_EQ(c.sqrt, base.sqrt) << nb;
      // fma + mul together is schedule-invariant (a tiled trsm turns some
      // "multiply by reciprocal" into explicit divisions; account below).
      EXPECT_EQ(c.fma, base.fma) << "nb=" << nb;
    }
  }
}

TEST(Counts, LoadsGrowAsTilesShrink) {
  // Smaller tiles mean less register reuse, hence more element loads.
  const int n = 48;
  std::int64_t prev = 0;
  for (const int nb : {8, 4, 2, 1}) {
    const OpCounts c =
        count_program(build_tile_program(n, nb, Looking::kTop));
    EXPECT_GT(c.load_elems, prev) << "nb=" << nb;
    prev = c.load_elems;
  }
}

TEST(Counts, StoreOrderingAcrossLookings) {
  const int n = 48, nb = 4;
  const auto s = [&](Looking l) {
    return count_program(build_tile_program(n, nb, l)).store_elems;
  };
  EXPECT_GT(s(Looking::kRight), s(Looking::kLeft));
  EXPECT_GT(s(Looking::kLeft), s(Looking::kTop));
}

TEST(Counts, LoadsComparableAcrossLookings) {
  // Paper §III: "there is no difference in the number of memory reads"
  // (to leading order). Allow 40% spread — the right-looking schedule
  // reloads the update target it cannot keep in registers.
  const int n = 48, nb = 4;
  const auto l = [&](Looking look) {
    return static_cast<double>(
        count_program(build_tile_program(n, nb, look)).load_elems);
  };
  const double top = l(Looking::kTop);
  EXPECT_NEAR(l(Looking::kLeft) / top, 1.0, 0.40);
  EXPECT_NEAR(l(Looking::kRight) / top, 1.0, 0.40);
}

TEST(Counts, FlopsConvention) {
  OpCounts c;
  c.fma = 10;
  c.mul = 3;
  c.div = 2;
  c.sqrt = 1;
  EXPECT_EQ(c.flops(), 26);
}

TEST(Counts, IssueSlotsFastMathCheaper) {
  OpCounts c;
  c.fma = 100;
  c.div = 10;
  c.sqrt = 10;
  EXPECT_LT(c.issue_slots(MathMode::kFastMath),
            c.issue_slots(MathMode::kIeee));
  EXPECT_EQ(c.issue_slots(MathMode::kIeee), 100 + 20 * 20);
  EXPECT_EQ(c.issue_slots(MathMode::kFastMath), 100 + 4 * 20);
}

TEST(Counts, NominalFlops) {
  EXPECT_DOUBLE_EQ(nominal_flops_per_matrix(3), 9.0);
  EXPECT_DOUBLE_EQ(nominal_flops_per_matrix(30), 9000.0);
}

// ----------------------------------------------------------- code size ---

TEST(CodeSize, FullUnrollGrowsWithProgramPartialDoesNot) {
  const auto small = build_tile_program(16, 8, Looking::kTop);
  const auto large = build_tile_program(64, 8, Looking::kTop);
  const auto f_small = estimate_code_size(small, Unroll::kFull,
                                          MathMode::kIeee);
  const auto f_large = estimate_code_size(large, Unroll::kFull,
                                          MathMode::kIeee);
  const auto p_small = estimate_code_size(small, Unroll::kPartial,
                                          MathMode::kIeee);
  const auto p_large = estimate_code_size(large, Unroll::kPartial,
                                          MathMode::kIeee);
  // Full unrolling scales with total work; partial stays near-constant
  // (same code sites, just more iterations).
  EXPECT_GT(f_large.instructions, 10 * f_small.instructions);
  EXPECT_LT(p_large.instructions, 4 * p_small.instructions);
}

TEST(CodeSize, FullAtLeastPartialForMultiTile) {
  const auto p = build_tile_program(32, 4, Looking::kTop);
  EXPECT_GE(estimate_code_size(p, Unroll::kFull, MathMode::kIeee).instructions,
            estimate_code_size(p, Unroll::kPartial, MathMode::kIeee)
                .instructions);
}

TEST(CodeSize, IeeeCodeLargerThanFast) {
  // IEEE div/sqrt expand to longer instruction sequences.
  const auto p = build_tile_program(24, 4, Looking::kTop);
  EXPECT_GT(estimate_code_size(p, Unroll::kFull, MathMode::kIeee).instructions,
            estimate_code_size(p, Unroll::kFull, MathMode::kFastMath)
                .instructions);
}

TEST(CodeSize, BytesAre8PerInstruction) {
  CodeSize s;
  s.instructions = 100;
  EXPECT_EQ(s.bytes(), 800);
}

}  // namespace
}  // namespace ibchol
