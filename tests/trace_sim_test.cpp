// Tests for the cache model and the trace-driven SIMT simulator.
#include <gtest/gtest.h>

#include "simt/cache_model.hpp"
#include "simt/trace_sim.hpp"

namespace ibchol {
namespace {

// ---------------------------------------------------------- cache model --

TEST(CacheModel, ColdMissesThenHits) {
  CacheModel c(4096, 128, 4);  // 32 lines, 8 sets
  EXPECT_FALSE(c.access(0, false));
  EXPECT_TRUE(c.access(64, false));   // same line
  EXPECT_TRUE(c.access(127, false));  // same line
  EXPECT_FALSE(c.access(128, false)); // next line
  EXPECT_EQ(c.stats().accesses, 4);
  EXPECT_EQ(c.stats().hits, 2);
  EXPECT_EQ(c.stats().misses, 2);
}

TEST(CacheModel, LruEvictionOrder) {
  // 2-way, 1 set: lines map to the same set when size == 2 lines.
  CacheModel c(256, 128, 2);
  c.access(0, false);        // A
  c.access(128, false);      // B
  c.access(0, false);        // A again (B is now LRU)
  c.access(256, false);      // C evicts B
  EXPECT_TRUE(c.access(0, false));     // A still resident
  EXPECT_FALSE(c.access(128, false));  // B was evicted
  EXPECT_GE(c.stats().evictions, 1);
}

TEST(CacheModel, WritebackOnDirtyEviction) {
  CacheModel c(256, 128, 2);
  c.access(0, true);    // dirty A
  c.access(128, false); // B
  c.access(256, false); // evicts A (LRU) -> writeback
  c.access(384, false); // evicts B (clean) -> no writeback
  EXPECT_EQ(c.stats().writebacks, 1);
}

TEST(CacheModel, FlushCountsDirtyLines) {
  CacheModel c(4096, 128, 4);
  c.access(0, true);
  c.access(128, true);
  c.access(256, false);
  EXPECT_EQ(c.flush_dirty(), 2);
  EXPECT_EQ(c.flush_dirty(), 0);  // idempotent
}

TEST(CacheModel, WorkingSetLargerThanCacheThrashes) {
  CacheModel c(4096, 128, 4);  // 32 lines
  // Stream 64 distinct lines twice: second pass still misses (capacity).
  for (int pass = 0; pass < 2; ++pass) {
    for (int l = 0; l < 64; ++l) c.access(static_cast<std::uint64_t>(l) * 128, false);
  }
  EXPECT_LT(c.stats().hit_rate(), 0.05);
}

TEST(CacheModel, WorkingSetFittingIsAllHitsAfterWarmup) {
  CacheModel c(4096, 128, 4);
  for (int pass = 0; pass < 4; ++pass) {
    for (int l = 0; l < 16; ++l) c.access(static_cast<std::uint64_t>(l) * 128, false);
  }
  // 16 cold misses out of 64 accesses.
  EXPECT_EQ(c.stats().misses, 16);
}

TEST(CacheModel, ResetClearsEverything) {
  CacheModel c(4096, 128, 4);
  c.access(0, true);
  c.reset();
  EXPECT_EQ(c.stats().accesses, 0);
  EXPECT_FALSE(c.access(0, false));  // cold again
}

TEST(CacheModel, RejectsBadGeometry) {
  EXPECT_THROW(CacheModel(100, 128, 4), Error);   // not whole sets
  EXPECT_THROW(CacheModel(4096, 100, 4), Error);  // line not a power of 2
  EXPECT_THROW(CacheModel(0, 128, 4), Error);
}

// ------------------------------------------------------------ trace sim --

class TraceSimTest : public ::testing::Test {
 protected:
  TraceSimulator sim_{GpuSpec::p100()};
  static constexpr std::int64_t kBatch = 16384;

  static TuningParams base() {
    TuningParams p;
    p.nb = 8;
    p.looking = Looking::kTop;
    p.chunked = true;
    p.chunk_size = 64;
    p.unroll = Unroll::kPartial;
    return p;
  }
};

TEST_F(TraceSimTest, Deterministic) {
  const auto a = sim_.simulate(24, kBatch, base());
  const auto b = sim_.simulate(24, kBatch, base());
  EXPECT_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.l2_hit_rate, b.l2_hit_rate);
}

TEST_F(TraceSimTest, SaneOutputs) {
  const auto r = sim_.simulate(32, kBatch, base());
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_GT(r.gflops, 0.0);
  EXPECT_LT(r.gflops * 1e9, GpuSpec::p100().peak_fp32_flops());
  EXPECT_GE(r.l2_hit_rate, 0.0);
  EXPECT_LE(r.l2_hit_rate, 1.0);
  EXPECT_GT(r.dram_read_bytes, 0.0);
  EXPECT_GT(r.dram_write_bytes, 0.0);
  EXPECT_GT(r.l2_accesses, 0);
}

TEST_F(TraceSimTest, TrafficAtLeastCompulsory) {
  // The batch's lower triangles must be read and written at least once.
  const int n = 24;
  const auto r = sim_.simulate(n, kBatch, base());
  const double tri_bytes = n * (n + 1) / 2.0 * 4.0 * kBatch;
  EXPECT_GE(r.dram_read_bytes, 0.9 * tri_bytes);
  EXPECT_GE(r.dram_write_bytes, 0.9 * tri_bytes);
}

TEST_F(TraceSimTest, ChunkedBeatsSimpleInterleaved) {
  for (const int n : {16, 32, 48}) {
    TuningParams chunked = base();
    TuningParams simple = base();
    simple.chunked = false;
    EXPECT_GT(sim_.simulate(n, kBatch, chunked).gflops,
              sim_.simulate(n, kBatch, simple).gflops)
        << n;
  }
}

TEST_F(TraceSimTest, SmallTilesMoveMoreTraffic) {
  TuningParams nb1 = base();
  nb1.nb = 1;
  TuningParams nb8 = base();
  const auto r1 = sim_.simulate(48, kBatch, nb1);
  const auto r8 = sim_.simulate(48, kBatch, nb8);
  EXPECT_GT(r1.dram_read_bytes, 2.0 * r8.dram_read_bytes);
  EXPECT_LT(r1.gflops, r8.gflops);
}

TEST_F(TraceSimTest, WriteTrafficOrderedByLaziness) {
  TuningParams right = base();
  right.looking = Looking::kRight;
  TuningParams top = base();
  const auto rr = sim_.simulate(48, kBatch, right);
  const auto rt = sim_.simulate(48, kBatch, top);
  EXPECT_GT(rr.dram_write_bytes, rt.dram_write_bytes);
}

TEST_F(TraceSimTest, PromotionShrinksFullUnrollTraffic) {
  // Below the promotion threshold, full unrolling moves only the
  // compulsory triangle.
  const int n = 16;
  TuningParams full = base();
  full.unroll = Unroll::kFull;
  TuningParams part = base();
  const auto rf = sim_.simulate(n, kBatch, full);
  const auto rp = sim_.simulate(n, kBatch, part);
  EXPECT_LT(rf.dram_read_bytes, rp.dram_read_bytes);
  const double tri_bytes = n * (n + 1) / 2.0 * 4.0 * kBatch;
  EXPECT_LT(rf.dram_read_bytes, 1.4 * tri_bytes);
}

TEST_F(TraceSimTest, HitRateHigherForChunkedReuse) {
  // With re-accesses present (nb small), the chunked layout's compact
  // working set yields a (weakly) better L2 hit rate than the simple
  // interleaved layout whose reuse window spans the whole dataset.
  TuningParams chunked = base();
  chunked.nb = 2;
  TuningParams simple = chunked;
  simple.chunked = false;
  const auto rc = sim_.simulate(24, kBatch, chunked);
  const auto rs = sim_.simulate(24, kBatch, simple);
  EXPECT_GE(rc.l2_hit_rate + 0.02, rs.l2_hit_rate);
}

TEST_F(TraceSimTest, StreamingKernelsHaveLowHitRates) {
  // The paper: "caches only serve the purpose of streaming buffers".
  const auto r = sim_.simulate(48, kBatch, base());
  EXPECT_LT(r.l2_hit_rate, 0.35);
}

TEST_F(TraceSimTest, RejectsBadArguments) {
  EXPECT_THROW((void)sim_.simulate(0, kBatch, base()), Error);
  EXPECT_THROW((void)sim_.simulate(8, 0, base()), Error);
}

TEST_F(TraceSimTest, SmallBatchClampsSampling) {
  // Batch of one chunk: fewer blocks than the default sample count.
  const auto r = sim_.simulate(8, 64, base());
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_EQ(r.blocks, 1);
}

}  // namespace
}  // namespace ibchol
