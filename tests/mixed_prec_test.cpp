// End-to-end tests of the reduced-precision storage lanes (DESIGN §12):
// the mixed chunk pipeline against the fp32 interpreter oracle, residual
// quality with iterative refinement, the self-healing escalation ladder,
// the bit-level poison screen, shifted-retry recovery, and the service's
// mixed submission paths. The ServiceMixed suite also runs under
// check.sh --tsan and --chaos.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/batch_cholesky.hpp"
#include "cpu/batch_factor.hpp"
#include "cpu/recover.hpp"
#include "cpu/refine.hpp"
#include "cpu/reference.hpp"
#include "cpu/simd/convert.hpp"
#include "layout/convert.hpp"
#include "layout/generate.hpp"
#include "svc/batch_service.hpp"
#include "util/aligned_buffer.hpp"

namespace ibchol {
namespace {

constexpr std::int64_t kBatch = 192;

struct MixedFixture {
  int n;
  std::int64_t batch;
  StoragePrec prec;
  BatchLayout layout;
  AlignedBuffer<float> fp32;      // the pristine fp32 batch
  AlignedBuffer<std::uint16_t> u16;  // the same batch narrowed

  MixedFixture(int n_in, std::int64_t batch_in, StoragePrec prec_in,
               double condition = 50.0)
      : n(n_in),
        batch(batch_in),
        prec(prec_in),
        layout(BatchLayout::interleaved_chunked(n, batch, 32)) {
    fp32.resize(layout.size_elems());
    SpdOptions gen;
    gen.kind = SpdKind::kControlledCondition;
    gen.condition = condition;
    generate_spd_batch<float>(layout, fp32.span(), gen);
    u16.resize(layout.size_elems());
    renarrow();
  }

  // Re-derive the 16-bit batch from the fp32 one (after fp32-side edits
  // like poison_matrix).
  void renarrow() {
    narrow_row(resolve_convert_isa(), prec, fp32.data(), u16.data(),
               static_cast<std::int64_t>(layout.size_elems()), false);
  }

  // The fp32 oracle: widen the narrowed words (exact) and factor with the
  // op-by-op interpreter. The mixed pipeline runs the identical fp32
  // arithmetic, so its stored triangle must equal narrow(oracle) bit for
  // bit.
  AlignedBuffer<float> oracle_factor() const {
    AlignedBuffer<float> oracle(layout.size_elems());
    widen_row(resolve_convert_isa(), prec, u16.data(), oracle.data(),
              static_cast<std::int64_t>(layout.size_elems()));
    CpuFactorOptions opt;
    opt.exec = CpuExec::kInterpreter;
    EXPECT_TRUE(factor_batch_cpu<float>(layout, oracle.span(), opt).ok());
    return oracle;
  }

  std::int64_t lower_triangle_mismatches(
      std::span<const std::uint16_t> got,
      std::span<const float> oracle) const {
    std::int64_t bad = 0;
    for (std::int64_t b = 0; b < batch; ++b) {
      for (int j = 0; j < n; ++j) {
        for (int i = j; i < n; ++i) {
          const std::uint16_t want = narrow_f32(oracle[layout.index(b, i, j)],
                                                prec);
          if (got[layout.index(b, i, j)] != want) ++bad;
        }
      }
    }
    return bad;
  }
};

// ----------------------------------------------- differential oracle ----

// The mixed pipeline (triangle-only coalesced conversion, packed fp32
// compute) must be bit-identical to narrow(interpreter-fp32-factor(widen))
// across the whole size grid, for both 16-bit formats.
TEST(MixedPrec, DifferentialGridVsFp32InterpreterOracle) {
  for (StoragePrec prec : {StoragePrec::kBf16, StoragePrec::kFp16}) {
    for (int n : {4, 8, 16, 24, 32, 48, 64}) {
      MixedFixture f(n, 128, prec);
      const AlignedBuffer<float> oracle = f.oracle_factor();
      const FactorResult res =
          factor_batch_cpu_mixed(f.layout, f.u16.span(), prec, {});
      EXPECT_TRUE(res.ok()) << "n=" << n << " prec=" << to_string(prec);
      EXPECT_EQ(f.lower_triangle_mismatches(f.u16.span(), oracle.span()), 0)
          << "n=" << n << " prec=" << to_string(prec);
    }
  }
}

// Exec modes and explicit chunk sizes all funnel through the same mixed
// pipeline arithmetic — results stay bit-identical to each other.
TEST(MixedPrec, ExecModesBitIdentical) {
  MixedFixture f(16, kBatch, StoragePrec::kBf16);
  AlignedBuffer<std::uint16_t> ref(f.layout.size_elems());
  std::copy(f.u16.begin(), f.u16.end(), ref.begin());
  CpuFactorOptions opt;
  opt.exec = CpuExec::kSpecialized;
  ASSERT_TRUE(
      factor_batch_cpu_mixed(f.layout, ref.span(), f.prec, opt).ok());
  for (CpuExec exec : {CpuExec::kVectorized, CpuExec::kInterpreter}) {
    AlignedBuffer<std::uint16_t> alt(f.layout.size_elems());
    std::copy(f.u16.begin(), f.u16.end(), alt.begin());
    CpuFactorOptions o;
    o.exec = exec;
    ASSERT_TRUE(factor_batch_cpu_mixed(f.layout, alt.span(), f.prec, o).ok());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(alt[i], ref[i]) << "exec " << static_cast<int>(exec)
                                << " elem " << i;
    }
  }
}

TEST(MixedPrec, RejectsFp32Storage) {
  MixedFixture f(8, 64, StoragePrec::kBf16);
  EXPECT_THROW(
      factor_batch_cpu_mixed(f.layout, f.u16.span(), StoragePrec::kFp32, {}),
      Error);
}

// ------------------------------------------------- residual quality -----

// Refined mixed solves must land within a small factor of the plain fp32
// solve's residual across the size grid — the acceptance bound is 4x.
TEST(MixedPrec, RefinedResidualWithin4xOfFp32) {
  for (int n : {4, 8, 16, 32, 48, 64}) {
    MixedFixture f(n, 64, StoragePrec::kBf16, 20.0);
    const BatchVectorLayout vlayout = BatchVectorLayout::matching(f.layout);
    AlignedBuffer<float> b(vlayout.size_elems()), x(vlayout.size_elems());
    for (std::int64_t m = 0; m < f.batch; ++m) {
      for (int i = 0; i < n; ++i) b[vlayout.index(m, i)] = 1.0f;
    }

    // fp32 reference: factor + refined solve.
    AlignedBuffer<float> ffac(f.layout.size_elems());
    std::copy(f.fp32.begin(), f.fp32.end(), ffac.begin());
    ASSERT_TRUE(factor_batch_cpu<float>(f.layout, ffac.span(), {}).ok());
    const RefineResult fres = refine_batch_solve(
        f.layout, std::span<const float>(f.fp32.span()),
        std::span<const float>(ffac.span()), vlayout,
        std::span<const float>(b.span()), x.span());
    ASSERT_TRUE(fres.converged);
    std::vector<float> a(n * n), xs(n);
    const std::vector<float> ones(n, 1.0f);
    double fp32_worst = 0.0, mixed_worst = 0.0;
    for (std::int64_t m = 0; m < f.batch; ++m) {
      extract_matrix<float>(f.layout, std::span<const float>(f.fp32.span()),
                            m, a);
      for (int i = 0; i < n; ++i) xs[i] = x[vlayout.index(m, i)];
      fp32_worst = std::max(fp32_worst, residual_error<float>(n, a, xs, ones));
    }

    // Mixed lane: factor the 16-bit batch, refine against the fp32-held b.
    ASSERT_TRUE(
        factor_batch_cpu_mixed(f.layout, f.u16.span(), f.prec, {}).ok());
    const MixedRefineResult mres = refine_batch_solve_mixed(
        f.layout, std::span<const float>(f.fp32.span()),
        std::span<const std::uint16_t>(f.u16.span()), f.prec, vlayout,
        std::span<const float>(b.span()), x.span());
    EXPECT_TRUE(mres.all_converged()) << "n=" << n;
    for (std::int64_t m = 0; m < f.batch; ++m) {
      extract_matrix<float>(f.layout, std::span<const float>(f.fp32.span()),
                            m, a);
      for (int i = 0; i < n; ++i) xs[i] = x[vlayout.index(m, i)];
      mixed_worst =
          std::max(mixed_worst, residual_error<float>(n, a, xs, ones));
    }
    EXPECT_LE(mixed_worst, 4.0 * fp32_worst + 1e-7)
        << "n=" << n << " fp32=" << fp32_worst << " mixed=" << mixed_worst;
  }
}

// -------------------------------------------------- escalation ladder ---

// The healthy path through the ladder: every matrix converges in the
// first refinement pass, no recovery rungs fire, info is all zero.
TEST(MixedPrec, LadderHealthyBatchNeedsNoRecovery) {
  MixedFixture f(16, 128, StoragePrec::kBf16, 20.0);
  const BatchVectorLayout vlayout = BatchVectorLayout::matching(f.layout);
  AlignedBuffer<float> b(vlayout.size_elems()), x(vlayout.size_elems());
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = 1.0f;
  ASSERT_TRUE(
      factor_batch_cpu_mixed(f.layout, f.u16.span(), f.prec, {}).ok());
  std::vector<std::int32_t> info(f.batch, -99);
  const MixedSolveReport rep = solve_batch_refine_recover_mixed(
      f.layout, std::span<const float>(f.fp32.span()), f.u16.span(), f.prec,
      vlayout, std::span<const float>(b.span()), x.span(), {}, {}, {},
      std::span<std::int32_t>(info));
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.refine.stalled, 0);
  EXPECT_EQ(rep.healed, 0);
  for (std::int32_t c : info) EXPECT_EQ(c, 0);
}

// An unreachable tolerance stalls every matrix; matrices the ladder
// cannot heal keep the distinct kInfoRefineStalled code (never a pivot
// column, never silent success).
TEST(MixedPrec, LadderStallsReportRefineStalled) {
  MixedFixture f(12, 64, StoragePrec::kBf16, 20.0);
  const BatchVectorLayout vlayout = BatchVectorLayout::matching(f.layout);
  AlignedBuffer<float> b(vlayout.size_elems()), x(vlayout.size_elems());
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = 1.0f;
  ASSERT_TRUE(
      factor_batch_cpu_mixed(f.layout, f.u16.span(), f.prec, {}).ok());
  RefineOptions ropt;
  ropt.tolerance = 0.0;  // no sweep can ever meet it
  ropt.max_iterations = 2;
  std::vector<std::int32_t> info(f.batch, -99);
  const MixedSolveReport rep = solve_batch_refine_recover_mixed(
      f.layout, std::span<const float>(f.fp32.span()), f.u16.span(), f.prec,
      vlayout, std::span<const float>(b.span()), x.span(), ropt, {}, {},
      std::span<std::int32_t>(info));
  EXPECT_FALSE(rep.ok());
  EXPECT_EQ(rep.refine.stalled, f.batch);
  EXPECT_EQ(rep.unrecovered + rep.healed, f.batch);
  std::int64_t stalled_codes = 0;
  for (std::int32_t c : info) {
    EXPECT_TRUE(c == 0 || c == kInfoRefineStalled) << c;
    if (c == kInfoRefineStalled) ++stalled_codes;
  }
  EXPECT_EQ(stalled_codes, rep.unrecovered);
}

// ------------------------------------------------------ poison screen ---

// screen_nonfinite_mixed runs at the bit level on the 16-bit words: a
// single poisoned element flags exactly its matrix and leaves the rest
// untouched.
TEST(MixedPrec, ScreenFlagsPoisonedMatrixOnly) {
  for (StoragePrec prec : {StoragePrec::kBf16, StoragePrec::kFp16}) {
    MixedFixture f(12, 96, prec);
    const std::int64_t victim = 37;
    f.u16[f.layout.index(victim, 5, 3)] =
        prec == StoragePrec::kBf16 ? 0x7FC0u : 0x7E00u;  // quiet NaN
    std::vector<std::int32_t> info(f.batch, 0);
    const std::int64_t flagged = screen_nonfinite_mixed(
        f.layout, std::span<const std::uint16_t>(f.u16.span()), prec,
        Triangle::kLower, std::span<std::int32_t>(info));
    EXPECT_EQ(flagged, 1);
    for (std::int64_t m = 0; m < f.batch; ++m) {
      EXPECT_EQ(info[m], m == victim ? kInfoNonFinite : 0) << "m=" << m;
    }
  }
}

// ---------------------------------------------------------- recovery ----

// factor_batch_recover_mixed: the NaN matrix screens out with its words
// preserved, the non-SPD matrix is healed by a shifted retry, healthy
// matrices stay bit-identical to a plain mixed factorization.
TEST(MixedPrec, RecoverScreensAndHealsMixedBatch) {
  MixedFixture f(12, 96, StoragePrec::kBf16);
  const std::int64_t poisoned = 11, nonspd = 42;
  poison_matrix<float>(f.layout, f.fp32.span(), nonspd, 3);
  f.renarrow();
  f.u16[f.layout.index(poisoned, 2, 1)] = 0x7FC0u;  // NaN word

  // Reference: the same faulted batch through the plain mixed driver (the
  // two injected matrices fail there; the healthy ones factor normally).
  AlignedBuffer<std::uint16_t> expect_plain(f.layout.size_elems());
  std::copy(f.u16.begin(), f.u16.end(), expect_plain.begin());
  (void)factor_batch_cpu_mixed(f.layout, expect_plain.span(), f.prec, {});

  std::vector<std::int32_t> info(f.batch, -99);
  const RecoveryReport rep = factor_batch_recover_mixed(
      f.layout, f.u16.span(), f.prec, {}, {}, std::span<std::int32_t>(info));
  EXPECT_EQ(rep.nonfinite, 1);
  EXPECT_EQ(rep.recovered, 1);
  EXPECT_EQ(rep.unrecoverable, 1);  // the NaN matrix can never be repaired
  EXPECT_EQ(info[poisoned], kInfoNonFinite);
  EXPECT_EQ(info[nonspd], 0);
  // The poisoned matrix's words come back exactly as supplied.
  EXPECT_EQ(f.u16[f.layout.index(poisoned, 2, 1)], 0x7FC0u);
  // Healthy matrices match the plain mixed factorization bit for bit.
  const std::int64_t healthy = 7;
  for (int j = 0; j < f.n; ++j) {
    for (int i = j; i < f.n; ++i) {
      EXPECT_EQ(f.u16[f.layout.index(healthy, i, j)],
                expect_plain[f.layout.index(healthy, i, j)]);
    }
  }
}

// ----------------------------------------------------------- service ----

// submit_mixed through the pool is bit-identical to the synchronous
// factor_batch_cpu_mixed, for both formats.
TEST(ServiceMixed, SubmitMixedBitIdenticalToSynchronous) {
  svc::ServiceOptions sopts;
  sopts.num_threads = 2;
  svc::BatchService service(sopts);
  for (StoragePrec prec : {StoragePrec::kBf16, StoragePrec::kFp16}) {
    MixedFixture f(16, kBatch, prec);
    AlignedBuffer<std::uint16_t> expect(f.layout.size_elems());
    std::copy(f.u16.begin(), f.u16.end(), expect.begin());
    ASSERT_TRUE(
        factor_batch_cpu_mixed(f.layout, expect.span(), prec, {}).ok());

    svc::SubmitOptions so;
    so.storage = prec;
    svc::FactorFuture fut =
        service.submit_mixed(f.layout, f.u16.span(), {}, {}, nullptr, so);
    const FactorResult res = fut.wait();
    EXPECT_TRUE(res.ok());
    EXPECT_EQ(fut.status(), svc::RequestStatus::kDone);
    for (std::size_t i = 0; i < expect.size(); ++i) {
      ASSERT_EQ(f.u16[i], expect[i]) << to_string(prec) << " elem " << i;
    }
  }
}

// The synchronous wrapper and per-matrix info plumbing.
TEST(ServiceMixed, FactorMixedReportsPerMatrixInfo) {
  svc::ServiceOptions sopts;
  sopts.num_threads = 2;
  svc::BatchService service(sopts);
  MixedFixture f(12, 96, StoragePrec::kBf16);
  const std::int64_t nonspd = 5;
  for (int i = 0; i < f.n; ++i) {
    f.u16[f.layout.index(nonspd, i, i)] = bf16_from_f32(-4.0f);
  }
  std::vector<std::int32_t> info(f.batch, -99);
  svc::SubmitOptions so;
  so.storage = StoragePrec::kBf16;
  const FactorResult res = service.factor_mixed(
      f.layout, f.u16.span(), {}, std::span<std::int32_t>(info), nullptr, so);
  EXPECT_EQ(res.failed_count, 1);
  EXPECT_EQ(res.first_failed, nonspd);
  EXPECT_GT(info[nonspd], 0);  // 1-based failing pivot column
  EXPECT_EQ(info[0], 0);
}

// Screening quarantines a poisoned mixed batch: status kPoisoned, the
// report names the matrix, its info is kInfoNonFinite, and every healthy
// matrix is still factored.
TEST(ServiceMixed, ScreenQuarantinesPoisonedMixedBatch) {
  svc::ServiceOptions sopts;
  sopts.num_threads = 2;
  svc::BatchService service(sopts);
  MixedFixture f(12, 96, StoragePrec::kFp16);
  const std::int64_t victim = 23;
  f.u16[f.layout.index(victim, 4, 4)] = 0x7E00u;  // fp16 quiet NaN
  std::vector<std::int32_t> info(f.batch, -99);
  svc::SubmitOptions so;
  so.storage = StoragePrec::kFp16;
  so.screen = true;
  svc::FactorFuture fut = service.submit_mixed(
      f.layout, f.u16.span(), {}, std::span<std::int32_t>(info), nullptr, so);
  fut.wait();
  EXPECT_EQ(fut.status(), svc::RequestStatus::kPoisoned);
  const RecoveryReport rep = fut.recovery_report();
  EXPECT_EQ(rep.nonfinite, 1);
  ASSERT_EQ(rep.matrices.size(), 1u);
  EXPECT_EQ(rep.matrices[0].index, victim);
  EXPECT_EQ(info[victim], kInfoNonFinite);
  std::int64_t zeros = 0;
  for (std::int32_t c : info) zeros += (c == 0);
  EXPECT_EQ(zeros, f.batch - 1);
}

// recover_mixed (the pooled ladder) agrees with the synchronous
// factor_batch_recover_mixed on report counts and final info codes.
TEST(ServiceMixed, RecoverMixedMatchesSynchronousRecovery) {
  MixedFixture f(12, 96, StoragePrec::kBf16);
  const std::int64_t nonspd = 17;
  poison_matrix<float>(f.layout, f.fp32.span(), nonspd, 4);
  f.renarrow();
  AlignedBuffer<std::uint16_t> sync_data(f.layout.size_elems());
  std::copy(f.u16.begin(), f.u16.end(), sync_data.begin());
  std::vector<std::int32_t> sync_info(f.batch, -99);
  const RecoveryReport sync_rep = factor_batch_recover_mixed(
      f.layout, sync_data.span(), f.prec, {}, {},
      std::span<std::int32_t>(sync_info));

  svc::ServiceOptions sopts;
  sopts.num_threads = 2;
  svc::BatchService service(sopts);
  std::vector<std::int32_t> svc_info(f.batch, -99);
  const RecoveryReport svc_rep = service.recover_mixed(
      f.layout, f.u16.span(), f.prec, {}, {},
      std::span<std::int32_t>(svc_info));
  EXPECT_EQ(svc_rep.nonfinite, sync_rep.nonfinite);
  EXPECT_EQ(svc_rep.failed, sync_rep.failed);
  EXPECT_EQ(svc_rep.recovered, sync_rep.recovered);
  EXPECT_EQ(svc_rep.unrecoverable, sync_rep.unrecoverable);
  EXPECT_EQ(svc_info, sync_info);
  for (std::size_t i = 0; i < sync_data.size(); ++i) {
    ASSERT_EQ(f.u16[i], sync_data[i]) << "elem " << i;
  }
}

// -------------------------------------------------------- tuning axis ---

// StoragePrec is the seventh tuning axis: names round-trip, fp32 stays
// out of the variant key (deviation-only suffix), reduced precisions key
// distinctly.
TEST(MixedPrec, StoragePrecAxisKeysAndNames) {
  for (StoragePrec prec :
       {StoragePrec::kFp32, StoragePrec::kBf16, StoragePrec::kFp16}) {
    EXPECT_EQ(storage_prec_from_string(to_string(prec)), prec);
  }
  TuningParams base;
  TuningParams bf = base;
  bf.storage = StoragePrec::kBf16;
  TuningParams hf = base;
  hf.storage = StoragePrec::kFp16;
  EXPECT_EQ(base.key().find("bf16"), std::string::npos);
  EXPECT_NE(bf.key().find("_bf16"), std::string::npos);
  EXPECT_NE(hf.key().find("_fp16"), std::string::npos);
  EXPECT_NE(base.key(), bf.key());
  EXPECT_NE(bf.key(), hf.key());
}

// BatchCholesky's mixed entry points: factorize_mixed agrees with the
// plain driver, and a storage-tuned recommended configuration validates.
TEST(MixedPrec, BatchCholeskyMixedEntryPoints) {
  const int n = 16;
  TuningParams p = recommended_params(n);
  p.storage = StoragePrec::kBf16;
  const BatchLayout layout = BatchCholesky::make_layout(n, 128, p);
  AlignedBuffer<float> fp(layout.size_elems());
  generate_spd_batch<float>(layout, fp.span());
  AlignedBuffer<std::uint16_t> u16(layout.size_elems());
  narrow_row(resolve_convert_isa(), p.storage, fp.data(), u16.data(),
             static_cast<std::int64_t>(layout.size_elems()), false);
  // Oracle: widen the narrowed batch (exact) and factor in fp32 with the
  // interpreter under the same tuning parameters.
  AlignedBuffer<float> oracle(layout.size_elems());
  widen_row(resolve_convert_isa(), p.storage, u16.data(), oracle.data(),
            static_cast<std::int64_t>(layout.size_elems()));
  TuningParams po = p;
  po.storage = StoragePrec::kFp32;
  po.exec = CpuExec::kInterpreter;
  ASSERT_TRUE(BatchCholesky(layout, po).factorize<float>(oracle.span()).ok());

  const BatchCholesky chol(layout, p);
  const FactorResult res = chol.factorize_mixed(u16.span());
  EXPECT_TRUE(res.ok());
  std::int64_t bad = 0;
  for (std::int64_t b = 0; b < 128; ++b) {
    for (int j = 0; j < n; ++j) {
      for (int i = j; i < n; ++i) {
        if (u16[layout.index(b, i, j)] !=
            bf16_from_f32(oracle[layout.index(b, i, j)])) {
          ++bad;
        }
      }
    }
  }
  EXPECT_EQ(bad, 0);
}

}  // namespace
}  // namespace ibchol
