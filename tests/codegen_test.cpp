// Golden tests for the CUDA source generator.
#include <gtest/gtest.h>

#include <string>

#include "kernels/cuda_codegen.hpp"

namespace ibchol {
namespace {

int count_occurrences(const std::string& haystack, const std::string& needle) {
  int count = 0;
  std::size_t pos = 0;
  while ((pos = haystack.find(needle, pos)) != std::string::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

TEST(Codegen, KernelNameEncodesVariant) {
  CodegenConfig cfg;
  cfg.n = 24;
  cfg.nb = 2;
  cfg.looking = Looking::kLeft;
  cfg.unroll = Unroll::kFull;
  cfg.chunk = 64;
  EXPECT_EQ(kernel_name(cfg), "spotrf_batch_n24_nb2_left_full_c64");
}

TEST(Codegen, RejectsNonDivisiblePartialUnroll) {
  CodegenConfig cfg;
  cfg.n = 10;
  cfg.nb = 4;
  cfg.unroll = Unroll::kPartial;
  EXPECT_THROW((void)generate_cuda_kernel(cfg), Error);
}

TEST(Codegen, FullUnrollHandlesCornerTiles) {
  // The paper's corner cases "follow the same principle of fully unrolling
  // each operation": straight-line code with constant offsets needs no
  // uniform tiling.
  CodegenConfig cfg;
  cfg.n = 10;
  cfg.nb = 4;
  cfg.unroll = Unroll::kFull;
  const std::string src = generate_cuda_kernel(cfg);
  EXPECT_NE(src.find("__global__"), std::string::npos);
  // The 2x2 corner diagonal tile at (8,8): element (9,9) at (9*10+9)*64.
  EXPECT_NE(src.find("dA[" + std::to_string((9 * 10 + 9) * 64) + "]"),
            std::string::npos);
}

TEST(Codegen, RejectsBadChunk) {
  CodegenConfig cfg;
  cfg.n = 8;
  cfg.nb = 4;
  cfg.chunk = 48;
  EXPECT_THROW((void)generate_cuda_kernel(cfg), Error);
}

TEST(Codegen, FullUnrollSingleTileGolden) {
  CodegenConfig cfg;
  cfg.n = 2;
  cfg.nb = 2;
  cfg.looking = Looking::kTop;
  cfg.unroll = Unroll::kFull;
  cfg.chunk = 32;
  const std::string src = generate_cuda_kernel(cfg);
  // 2x2 factorization: sqrt(a00); inv; a10 *= inv; a11 -= a10*a10; sqrt(a11).
  EXPECT_NE(src.find("rA1_00 = sqrtf(rA1_00);"), std::string::npos);
  EXPECT_NE(src.find("inv = 1.0f/rA1_00;"), std::string::npos);
  EXPECT_NE(src.find("rA1_10 *= inv;"), std::string::npos);
  EXPECT_NE(src.find("rA1_11 -= rA1_10*rA1_10;"), std::string::npos);
  EXPECT_NE(src.find("rA1_11 = sqrtf(rA1_11);"), std::string::npos);
  // Loads use constant offsets with the chunk stride: (j*N+i)*C.
  EXPECT_NE(src.find("rA1_00 = dA[0];"), std::string::npos);
  EXPECT_NE(src.find("rA1_10 = dA[32];"), std::string::npos);
  EXPECT_NE(src.find("rA1_11 = dA[96];"), std::string::npos);  // (1*2+1)*32
  // Kernel frame.
  EXPECT_NE(src.find("__global__"), std::string::npos);
  EXPECT_NE(src.find("blockIdx.x"), std::string::npos);
  EXPECT_NE(src.find("threadIdx.x"), std::string::npos);
}

TEST(Codegen, FullUnrollHasNoLoops) {
  CodegenConfig cfg;
  cfg.n = 8;
  cfg.nb = 4;
  cfg.unroll = Unroll::kFull;
  const std::string src = generate_cuda_kernel(cfg);
  EXPECT_EQ(src.find("for ("), std::string::npos);
  EXPECT_EQ(src.find("#define load_full"), std::string::npos);
}

TEST(Codegen, PartialUnrollHasMacrosAndDriver) {
  CodegenConfig cfg;
  cfg.n = 16;
  cfg.nb = 4;
  cfg.looking = Looking::kTop;
  cfg.unroll = Unroll::kPartial;
  const std::string src = generate_cuda_kernel(cfg);
  // The paper's macro set (Figures 9-10).
  for (const char* macro :
       {"#define load_full", "#define store_full", "#define load_lower",
        "#define store_lower", "#define spotrf_tile", "#define strsm_tile",
        "#define ssyrk_tile", "#define sgemm_tile"}) {
    EXPECT_NE(src.find(macro), std::string::npos) << macro;
  }
  // The Fig-11 driver loop.
  EXPECT_NE(src.find("for (int kk = 0; kk < T; kk++)"), std::string::npos);
  EXPECT_NE(src.find("sgemm_tile(rA1, rA2, rA3);"), std::string::npos);
  EXPECT_NE(src.find("#define T 4"), std::string::npos);
  EXPECT_NE(src.find("#define NB 4"), std::string::npos);
}

TEST(Codegen, DriverStructureDiffersByLooking) {
  CodegenConfig cfg;
  cfg.n = 16;
  cfg.nb = 4;
  cfg.unroll = Unroll::kPartial;
  cfg.looking = Looking::kRight;
  const std::string right = generate_cuda_kernel(cfg);
  cfg.looking = Looking::kTop;
  const std::string top = generate_cuda_kernel(cfg);
  // Right-looking updates the trailing submatrix (loop over jj after the
  // panel); top-looking never has that structure.
  EXPECT_NE(right.find("for (int jj = kk+1; jj < T; jj++)"),
            std::string::npos);
  EXPECT_EQ(top.find("for (int jj = kk+1"), std::string::npos);
}

TEST(Codegen, FullUnrollStatementCountScalesWithWork) {
  CodegenConfig small;
  small.n = 8;
  small.nb = 2;
  small.unroll = Unroll::kFull;
  CodegenConfig large = small;
  large.n = 16;
  const std::string s = generate_cuda_kernel(small);
  const std::string l = generate_cuda_kernel(large);
  EXPECT_GT(count_occurrences(l, ";"), 3 * count_occurrences(s, ";"));
}

TEST(Codegen, FastMathNoted) {
  CodegenConfig cfg;
  cfg.n = 4;
  cfg.nb = 2;
  cfg.math = MathMode::kFastMath;
  const std::string src = generate_cuda_kernel(cfg);
  EXPECT_NE(src.find("--use_fast_math"), std::string::npos);
}

TEST(Codegen, HeaderRecordsAllParameters) {
  CodegenConfig cfg;
  cfg.n = 24;
  cfg.nb = 8;
  cfg.looking = Looking::kLeft;
  cfg.unroll = Unroll::kPartial;
  cfg.chunk = 128;
  const std::string src = generate_cuda_kernel(cfg);
  EXPECT_NE(src.find("n=24"), std::string::npos);
  EXPECT_NE(src.find("nb=8"), std::string::npos);
  EXPECT_NE(src.find("looking=left"), std::string::npos);
  EXPECT_NE(src.find("unroll=partial"), std::string::npos);
  EXPECT_NE(src.find("chunk=128"), std::string::npos);
}

TEST(Codegen, LowerLoadSkipsUpperTriangle) {
  CodegenConfig cfg;
  cfg.n = 2;
  cfg.nb = 2;
  cfg.unroll = Unroll::kFull;
  cfg.chunk = 32;
  const std::string src = generate_cuda_kernel(cfg);
  // Element (0,1) = offset (1*2+0)*32 = 64 must never be read or written.
  EXPECT_EQ(src.find("dA[64]"), std::string::npos);
}

}  // namespace
}  // namespace ibchol
