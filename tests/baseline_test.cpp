// Tests for the traditional (MAGMA-like) baseline model and its relation
// to the interleaved kernels (paper Figures 13-14).
#include <gtest/gtest.h>

#include "autotune/space.hpp"
#include "baseline/traditional_model.hpp"
#include "simt/kernel_model.hpp"

namespace ibchol {
namespace {

constexpr std::int64_t kBatch = 16384;

TEST(Traditional, SaneOutputs) {
  const TraditionalModel model(GpuSpec::p100());
  const TraditionalResult r = model.evaluate(16, kBatch);
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_GT(r.gflops, 0.0);
  EXPECT_GT(r.dram_bytes, 0.0);
  EXPECT_GT(r.write_efficiency, 0.0);
  EXPECT_LE(r.write_efficiency, 1.0);
}

TEST(Traditional, PerformanceGrowsWithN) {
  const TraditionalModel model(GpuSpec::p100());
  double prev = 0.0;
  for (const int n : {4, 8, 16, 32, 64}) {
    const double g = model.evaluate(n, kBatch).gflops;
    EXPECT_GT(g, prev) << n;
    prev = g;
  }
}

TEST(Traditional, WriteEfficiencyImprovesWithN) {
  const TraditionalModel model(GpuSpec::p100());
  EXPECT_LT(model.evaluate(3, kBatch).write_efficiency,
            model.evaluate(48, kBatch).write_efficiency);
}

TEST(Traditional, BlockSizeRoundsToWarp) {
  const TraditionalModel model(GpuSpec::p100());
  EXPECT_EQ(model.evaluate(5, kBatch).threads_per_block, 32);
  EXPECT_EQ(model.evaluate(33, kBatch).threads_per_block, 64);
}

TEST(Traditional, RejectsBadShapes) {
  const TraditionalModel model(GpuSpec::p100());
  EXPECT_THROW((void)model.evaluate(0, kBatch), Error);
  EXPECT_THROW((void)model.evaluate(8, 0), Error);
}

// Fig 14's headline: the interleaved code dominates for small matrices
// (several-fold), and the traditional code overtakes for larger ones.
TEST(Speedup, InterleavedWinsSmallLosesLarge) {
  const KernelModel interleaved(GpuSpec::p100());
  const TraditionalModel traditional(GpuSpec::p100());

  auto best_interleaved = [&](int n) {
    double best = 0.0;
    for (const auto& p : enumerate_space(n, {})) {
      best = std::max(best, interleaved.evaluate(n, kBatch, p).gflops);
    }
    return best;
  };

  const double sp8 = best_interleaved(8) / traditional.evaluate(8, kBatch).gflops;
  const double sp16 =
      best_interleaved(16) / traditional.evaluate(16, kBatch).gflops;
  const double sp64 =
      best_interleaved(64) / traditional.evaluate(64, kBatch).gflops;

  EXPECT_GT(sp8, 3.0);   // dramatic win for very small matrices
  EXPECT_GT(sp16, 2.0);
  EXPECT_LT(sp64, 1.2);  // traditional has caught up
  EXPECT_GT(sp8, sp16);  // speedup declines with n
  EXPECT_GT(sp16, sp64);
}

TEST(Speedup, MonotoneDeclineOverStandardSizes) {
  const KernelModel interleaved(GpuSpec::p100());
  const TraditionalModel traditional(GpuSpec::p100());
  TuningParams p;
  p.nb = 8;
  p.chunked = true;
  p.chunk_size = 64;
  double prev = 1e9;
  int violations = 0;
  for (const int n : {8, 16, 24, 32, 40, 48, 56, 64}) {
    TuningParams q = p;
    if (n <= 20) q.unroll = Unroll::kFull;
    const double sp = interleaved.evaluate(n, kBatch, q).gflops /
                      traditional.evaluate(n, kBatch).gflops;
    if (sp > prev + 0.05) ++violations;
    prev = sp;
  }
  // The decline need not be strictly monotone (regime changes), but it
  // must be overwhelmingly downward.
  EXPECT_LE(violations, 1);
}

}  // namespace
}  // namespace ibchol
