// Tests for the batched BLAS companions and the rectangular batch layout.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "cpu/batch_blas.hpp"
#include "cpu/batch_factor.hpp"
#include "cpu/reference.hpp"
#include "layout/convert.hpp"
#include "layout/generate.hpp"
#include "layout/rect_layout.hpp"
#include "util/aligned_buffer.hpp"
#include "util/rng.hpp"

namespace ibchol {
namespace {

// ---------------------------------------------------------- rect layout --

TEST(RectLayout, IndexBijective) {
  for (const auto& l : {BatchRectLayout::canonical(3, 5, 7),
                        BatchRectLayout::interleaved(3, 5, 40),
                        BatchRectLayout::interleaved_chunked(3, 5, 70, 32)}) {
    std::set<std::size_t> seen;
    const std::int64_t count =
        l.kind() == LayoutKind::kCanonical ? l.batch() : l.padded_batch();
    for (std::int64_t b = 0; b < count; ++b) {
      for (int j = 0; j < l.cols(); ++j) {
        for (int i = 0; i < l.rows(); ++i) {
          const auto off = l.index(b, i, j);
          EXPECT_LT(off, l.size_elems());
          EXPECT_TRUE(seen.insert(off).second);
        }
      }
    }
    EXPECT_EQ(seen.size(), l.size_elems());
  }
}

TEST(RectLayout, SquareMatchesBatchLayout) {
  const auto sq = BatchLayout::interleaved_chunked(6, 100, 32);
  const auto rect = BatchRectLayout::matching(sq, 6, 6);
  for (const std::int64_t b : {std::int64_t{0}, std::int64_t{45}}) {
    for (int j = 0; j < 6; ++j) {
      for (int i = 0; i < 6; ++i) {
        EXPECT_EQ(rect.index(b, i, j), sq.index(b, i, j));
      }
    }
  }
}

TEST(RectLayout, CompatibilityRules) {
  const auto m = BatchLayout::interleaved_chunked(8, 100, 64);
  EXPECT_TRUE(BatchRectLayout::matching(m, 8, 3).compatible(m));
  EXPECT_FALSE(
      BatchRectLayout::interleaved_chunked(8, 3, 100, 32).compatible(m));
  EXPECT_FALSE(BatchRectLayout::canonical(8, 3, 100).compatible(m));
}

TEST(RectLayout, RejectsBadShapes) {
  EXPECT_THROW((void)BatchRectLayout::canonical(0, 3, 5), Error);
  EXPECT_THROW((void)BatchRectLayout::interleaved_chunked(2, 2, 5, 40),
               Error);
}

// ------------------------------------------------------------ fixtures ---

struct BlasCase {
  LayoutKind kind;
  int chunk;
};

void PrintTo(const BlasCase& c, std::ostream* os) {
  *os << to_string(c.kind) << "_c" << c.chunk;
}

class BatchBlasTest : public ::testing::TestWithParam<BlasCase> {
 protected:
  BatchLayout square(int n, std::int64_t batch) const {
    switch (GetParam().kind) {
      case LayoutKind::kCanonical:
        return BatchLayout::canonical(n, batch);
      case LayoutKind::kInterleaved:
        return BatchLayout::interleaved(n, batch);
      case LayoutKind::kInterleavedChunked:
        return BatchLayout::interleaved_chunked(n, batch, GetParam().chunk);
    }
    throw Error("bad kind");
  }
};

// --------------------------------------------------------------- potrs ---

TEST_P(BatchBlasTest, PotrsMultiRhsSolvesSystems) {
  const int n = 10, nrhs = 3;
  const std::int64_t batch = 77;
  const BatchLayout mlayout = square(n, batch);
  const BatchRectLayout rlayout = BatchRectLayout::matching(mlayout, n, nrhs);

  AlignedBuffer<float> mats(mlayout.size_elems());
  generate_spd_batch<float>(mlayout, mats.span());
  const std::vector<float> orig(mats.begin(), mats.end());
  ASSERT_TRUE(factor_batch_cpu<float>(mlayout, mats.span(), {}).ok());

  AlignedBuffer<float> rhs(rlayout.size_elems());
  Xoshiro256 rng(5);
  std::vector<float> bvals(batch * n * nrhs);
  for (auto& v : bvals) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (std::int64_t b = 0; b < batch; ++b) {
    for (int c = 0; c < nrhs; ++c) {
      for (int i = 0; i < n; ++i) {
        rhs[rlayout.index(b, i, c)] = bvals[(b * nrhs + c) * n + i];
      }
    }
  }

  batch_potrs<float>(mlayout, std::span<const float>(mats.span()), rlayout,
                     rhs.span());

  // Check every RHS column of a few matrices.
  std::vector<float> a(n * n), x(n), bv(n);
  for (const std::int64_t b : {std::int64_t{0}, batch / 2, batch - 1}) {
    extract_matrix<float>(mlayout, std::span<const float>(orig), b, a);
    for (int c = 0; c < nrhs; ++c) {
      for (int i = 0; i < n; ++i) {
        x[i] = rhs[rlayout.index(b, i, c)];
        bv[i] = bvals[(b * nrhs + c) * n + i];
      }
      EXPECT_LT(residual_error<float>(n, a, x, bv), 1e-4)
          << "b=" << b << " rhs col " << c;
    }
  }
}

TEST_P(BatchBlasTest, TrsmForwardThenBackwardEqualsPotrs) {
  const int n = 6, nrhs = 2;
  const std::int64_t batch = 40;
  const BatchLayout mlayout = square(n, batch);
  const BatchRectLayout rlayout = BatchRectLayout::matching(mlayout, n, nrhs);

  AlignedBuffer<float> mats(mlayout.size_elems());
  generate_spd_batch<float>(mlayout, mats.span());
  ASSERT_TRUE(factor_batch_cpu<float>(mlayout, mats.span(), {}).ok());

  AlignedBuffer<float> r1(rlayout.size_elems()), r2(rlayout.size_elems());
  for (std::size_t i = 0; i < r1.size(); ++i) r1[i] = r2[i] = 1.0f;

  batch_potrs<float>(mlayout, std::span<const float>(mats.span()), rlayout,
                     r1.span());
  batch_trsm_left_lower<float>(mlayout, std::span<const float>(mats.span()),
                               rlayout, r2.span(), false);
  batch_trsm_left_lower<float>(mlayout, std::span<const float>(mats.span()),
                               rlayout, r2.span(), true);
  for (std::size_t i = 0; i < r1.size(); ++i) EXPECT_EQ(r1[i], r2[i]);
}

// ---------------------------------------------------------------- syrk ---

TEST_P(BatchBlasTest, SyrkMatchesReference) {
  const int n = 7, k = 4;
  const std::int64_t batch = 50;
  const BatchLayout clayout = square(n, batch);
  const BatchRectLayout alayout = BatchRectLayout::matching(clayout, n, k);

  AlignedBuffer<double> cs(clayout.size_elems());
  generate_spd_batch<double>(clayout, cs.span());
  AlignedBuffer<double> as(alayout.size_elems());
  Xoshiro256 rng(9);
  for (std::int64_t b = 0; b < batch; ++b) {
    for (int j = 0; j < k; ++j) {
      for (int i = 0; i < n; ++i) {
        as[alayout.index(b, i, j)] = rng.uniform(-1.0, 1.0);
      }
    }
  }
  // Reference result for matrix 13.
  std::vector<double> cref(n * n), aref(n * k);
  extract_matrix<double>(clayout, std::span<const double>(cs.span()), 13,
                         cref);
  for (int j = 0; j < k; ++j) {
    for (int i = 0; i < n; ++i) aref[i + j * n] = as[alayout.index(13, i, j)];
  }
  syrk_lower_nt(n, k, aref.data(), n, cref.data(), n);

  batch_syrk_lower<double>(clayout, cs.span(), alayout,
                           std::span<const double>(as.span()));

  std::vector<double> got(n * n);
  extract_matrix<double>(clayout, std::span<const double>(cs.span()), 13, got);
  for (int j = 0; j < n; ++j) {
    for (int i = j; i < n; ++i) {
      EXPECT_NEAR(got[i + j * n], cref[i + j * n], 1e-12);
    }
  }
}

// ---------------------------------------------------------------- gemm ---

TEST_P(BatchBlasTest, GemmMatchesReference) {
  const int m = 5, n = 4, k = 3;
  const std::int64_t batch = 64;
  BatchRectLayout cl = BatchRectLayout::canonical(m, n, batch);
  BatchRectLayout al = BatchRectLayout::canonical(m, k, batch);
  BatchRectLayout bl = BatchRectLayout::canonical(n, k, batch);
  if (GetParam().kind == LayoutKind::kInterleaved) {
    cl = BatchRectLayout::interleaved(m, n, batch);
    al = BatchRectLayout::interleaved(m, k, batch);
    bl = BatchRectLayout::interleaved(n, k, batch);
  } else if (GetParam().kind == LayoutKind::kInterleavedChunked) {
    cl = BatchRectLayout::interleaved_chunked(m, n, batch, GetParam().chunk);
    al = BatchRectLayout::interleaved_chunked(m, k, batch, GetParam().chunk);
    bl = BatchRectLayout::interleaved_chunked(n, k, batch, GetParam().chunk);
  }

  AlignedBuffer<float> cs(cl.size_elems()), as(al.size_elems()),
      bs(bl.size_elems());
  Xoshiro256 rng(11);
  auto fill = [&](const BatchRectLayout& l, AlignedBuffer<float>& buf) {
    for (std::int64_t b = 0; b < batch; ++b) {
      for (int j = 0; j < l.cols(); ++j) {
        for (int i = 0; i < l.rows(); ++i) {
          buf[l.index(b, i, j)] = static_cast<float>(rng.uniform(-1.0, 1.0));
        }
      }
    }
  };
  fill(cl, cs);
  fill(al, as);
  fill(bl, bs);

  // Reference for matrix 20.
  std::vector<float> cref(m * n), aref(m * k), bref(n * k);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < m; ++i) cref[i + j * m] = cs[cl.index(20, i, j)];
  }
  for (int j = 0; j < k; ++j) {
    for (int i = 0; i < m; ++i) aref[i + j * m] = as[al.index(20, i, j)];
    for (int i = 0; i < n; ++i) bref[i + j * n] = bs[bl.index(20, i, j)];
  }
  gemm_nt_minus(m, n, k, aref.data(), m, bref.data(), n, cref.data(), m);

  batch_gemm_nt<float>(cl, cs.span(), al, std::span<const float>(as.span()),
                       bl, std::span<const float>(bs.span()));
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < m; ++i) {
      EXPECT_NEAR(cs[cl.index(20, i, j)], cref[i + j * m], 1e-5);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, BatchBlasTest,
    ::testing::Values(BlasCase{LayoutKind::kCanonical, 0},
                      BlasCase{LayoutKind::kInterleaved, 0},
                      BlasCase{LayoutKind::kInterleavedChunked, 32},
                      BlasCase{LayoutKind::kInterleavedChunked, 64}));

// ------------------------------------------------------------ validation --

TEST(BatchBlas, RejectsIncompatibleLayouts) {
  const auto m = BatchLayout::interleaved_chunked(6, 64, 32);
  const auto bad = BatchRectLayout::interleaved(6, 2, 64);  // wrong scheme
  AlignedBuffer<float> mats(m.size_elems());
  AlignedBuffer<float> rhs(bad.size_elems());
  EXPECT_THROW(batch_potrs<float>(m, std::span<const float>(mats.span()), bad,
                                  rhs.span()),
               Error);
}

TEST(BatchBlas, RejectsDimensionMismatch) {
  const auto m = BatchLayout::interleaved(6, 64);
  const auto r = BatchRectLayout::matching(m, 5, 2);  // rows != n
  AlignedBuffer<float> mats(m.size_elems());
  AlignedBuffer<float> rhs(r.size_elems());
  EXPECT_THROW(batch_potrs<float>(m, std::span<const float>(mats.span()), r,
                                  rhs.span()),
               Error);
}

TEST(BatchBlas, GemmRejectsBadB) {
  const std::int64_t batch = 32;
  const auto cl = BatchRectLayout::interleaved(4, 3, batch);
  const auto al = BatchRectLayout::interleaved(4, 2, batch);
  const auto bl = BatchRectLayout::interleaved(3, 5, batch);  // k mismatch
  AlignedBuffer<float> cs(cl.size_elems()), as(al.size_elems()),
      bs(bl.size_elems());
  EXPECT_THROW(
      batch_gemm_nt<float>(cl, cs.span(), al,
                           std::span<const float>(as.span()), bl,
                           std::span<const float>(bs.span())),
      Error);
}

}  // namespace
}  // namespace ibchol
