// Tests for the per-matrix dense reference routines.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "cpu/reference.hpp"
#include "util/rng.hpp"

namespace ibchol {
namespace {

// Builds a random SPD matrix A = G·Gᵀ + n·I (column-major, dense).
template <typename T>
std::vector<T> random_spd(int n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<double> g(static_cast<std::size_t>(n) * n);
  for (auto& v : g) v = rng.uniform(-1.0, 1.0);
  std::vector<T> a(static_cast<std::size_t>(n) * n);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      double acc = (i == j) ? n : 0.0;
      for (int k = 0; k < n; ++k) {
        acc += g[i + static_cast<std::size_t>(k) * n] *
               g[j + static_cast<std::size_t>(k) * n];
      }
      a[i + static_cast<std::size_t>(j) * n] = static_cast<T>(acc);
    }
  }
  return a;
}

TEST(Reference, KnownThreeByThree) {
  // A = [[4,12,-16],[12,37,-43],[-16,-43,98]] has L = [[2],[6,1],[-8,5,3]].
  std::vector<double> a{4, 12, -16, 12, 37, -43, -16, -43, 98};
  ASSERT_EQ(potrf_unblocked(3, a.data(), 3), 0);
  EXPECT_NEAR(a[0], 2.0, 1e-12);
  EXPECT_NEAR(a[1], 6.0, 1e-12);
  EXPECT_NEAR(a[2], -8.0, 1e-12);
  EXPECT_NEAR(a[4], 1.0, 1e-12);
  EXPECT_NEAR(a[5], 5.0, 1e-12);
  EXPECT_NEAR(a[8], 3.0, 1e-12);
}

TEST(Reference, OneByOne) {
  std::vector<double> a{9.0};
  ASSERT_EQ(potrf_unblocked(1, a.data(), 1), 0);
  EXPECT_DOUBLE_EQ(a[0], 3.0);
}

TEST(Reference, NonSpdReportsColumn) {
  // Identity with a -1 at diagonal position 2 fails at column 3 (1-based).
  std::vector<double> a(16, 0.0);
  for (int i = 0; i < 4; ++i) a[i + 4 * i] = 1.0;
  a[2 + 4 * 2] = -1.0;
  EXPECT_EQ(potrf_unblocked(4, a.data(), 4), 3);
}

TEST(Reference, ZeroPivotAlsoFails) {
  std::vector<double> a(4, 0.0);  // 2x2 zero matrix
  EXPECT_EQ(potrf_unblocked(2, a.data(), 2), 1);
}

class BlockedVsUnblocked : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BlockedVsUnblocked, AgreeToRoundoff) {
  const auto [n, nb] = GetParam();
  auto a = random_spd<double>(n, 17);
  auto b = a;
  ASSERT_EQ(potrf_unblocked(n, a.data(), n), 0);
  ASSERT_EQ(potrf_blocked(n, nb, b.data(), n), 0);
  for (int j = 0; j < n; ++j) {
    for (int i = j; i < n; ++i) {
      EXPECT_NEAR(a[i + static_cast<std::size_t>(j) * n],
                  b[i + static_cast<std::size_t>(j) * n], 1e-9)
          << i << "," << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BlockedVsUnblocked,
    ::testing::Combine(::testing::Values(1, 2, 5, 8, 13, 24, 37),
                       ::testing::Values(1, 2, 4, 8, 64)));

TEST(Reference, ReconstructionErrorSmallAfterFactor) {
  const int n = 16;
  const auto orig = random_spd<float>(n, 3);
  auto fact = orig;
  ASSERT_EQ(potrf_unblocked(n, fact.data(), n), 0);
  EXPECT_LT(reconstruction_error<float>(n, orig, fact), 1e-5);
}

TEST(Reference, ReconstructionErrorDetectsCorruption) {
  const int n = 8;
  const auto orig = random_spd<float>(n, 4);
  auto fact = orig;
  ASSERT_EQ(potrf_unblocked(n, fact.data(), n), 0);
  fact[3] += 1.0f;  // corrupt one factor entry
  EXPECT_GT(reconstruction_error<float>(n, orig, fact), 1e-3);
}

TEST(Reference, TrsmSolvesAgainstNaive) {
  // X·Lᵀ = B  =>  X = B·L^{-T}; verify X·Lᵀ reproduces B.
  const int m = 3, n = 4;
  auto lfull = random_spd<double>(n, 9);
  ASSERT_EQ(potrf_unblocked(n, lfull.data(), n), 0);
  Xoshiro256 rng(10);
  std::vector<double> b(m * n);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  auto x = b;
  trsm_right_lower_trans(m, n, lfull.data(), n, x.data(), m);
  // Recompute (X·Lᵀ)[i][j] = sum_{k<=j} X[i][k]·L[j][k] (L lower).
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < m; ++i) {
      double acc = 0.0;
      for (int k = 0; k <= j; ++k) {
        acc += x[i + static_cast<std::size_t>(k) * m] *
               lfull[j + static_cast<std::size_t>(k) * n];
      }
      EXPECT_NEAR(acc, b[i + static_cast<std::size_t>(j) * m], 1e-9);
    }
  }
}

TEST(Reference, SyrkMatchesNaive) {
  const int n = 4, k = 3;
  Xoshiro256 rng(11);
  std::vector<double> a(n * k), c(n * n, 0.0), expected(n * n, 0.0);
  for (auto& v : a) v = rng.uniform(-1.0, 1.0);
  for (int j = 0; j < n; ++j) {
    for (int i = j; i < n; ++i) {
      for (int p = 0; p < k; ++p) {
        expected[i + j * n] -= a[i + p * n] * a[j + p * n];
      }
    }
  }
  syrk_lower_nt(n, k, a.data(), n, c.data(), n);
  for (int j = 0; j < n; ++j) {
    for (int i = j; i < n; ++i) {
      EXPECT_NEAR(c[i + j * n], expected[i + j * n], 1e-12);
    }
  }
}

TEST(Reference, GemmMatchesNaive) {
  const int m = 3, n = 2, k = 4;
  Xoshiro256 rng(12);
  std::vector<double> a(m * k), b(n * k), c(m * n, 1.0), expected(m * n, 1.0);
  for (auto& v : a) v = rng.uniform(-1.0, 1.0);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < m; ++i) {
      for (int p = 0; p < k; ++p) {
        expected[i + j * m] -= a[i + p * m] * b[j + p * n];
      }
    }
  }
  gemm_nt_minus(m, n, k, a.data(), m, b.data(), n, c.data(), m);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(c[i], expected[i], 1e-12);
  }
}

TEST(Reference, PotrsSolvesSystem) {
  const int n = 12;
  const auto a = random_spd<double>(n, 21);
  auto l = a;
  ASSERT_EQ(potrf_unblocked(n, l.data(), n), 0);
  Xoshiro256 rng(22);
  std::vector<double> x_true(n), b(n, 0.0);
  for (auto& v : x_true) v = rng.uniform(-1.0, 1.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      b[i] += a[i + static_cast<std::size_t>(j) * n] * x_true[j];
    }
  }
  auto x = b;
  potrs_vector(n, l.data(), n, x.data());
  for (int i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

TEST(Reference, ResidualErrorZeroForExactSolve) {
  const int n = 6;
  const auto a = random_spd<double>(n, 30);
  auto l = a;
  ASSERT_EQ(potrf_unblocked(n, l.data(), n), 0);
  std::vector<double> b(n, 1.0);
  auto x = b;
  potrs_vector(n, l.data(), n, x.data());
  EXPECT_LT(residual_error<double>(n, a, x, b), 1e-12);
}

TEST(Reference, ResidualErrorFlagsWrongSolution) {
  const int n = 6;
  const auto a = random_spd<double>(n, 31);
  std::vector<double> b(n, 1.0), x(n, 0.0);  // x = 0 is not a solution
  EXPECT_GT(residual_error<double>(n, a, x, b), 1e-3);
}

TEST(Reference, BlockedPropagatesFailureColumn) {
  const int n = 12;
  auto a = random_spd<double>(n, 40);
  // Make the trailing part fail: set diagonal element 9 very negative.
  a[9 + 9 * 12] = -1e6;
  const int info = potrf_blocked(n, 4, a.data(), n);
  EXPECT_EQ(info, 10);  // 1-based
}

}  // namespace
}  // namespace ibchol
