// Tests for the specialized (compile-time instantiated) tile-program
// executor: over the full variant grid — every tile size × looking order ×
// corner dimension (n % nb != 0) × element type × triangle × math mode —
// the specialized executor must produce factors matching the interpreter,
// which remains the correctness oracle.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "cpu/tile_exec.hpp"
#include "cpu/tile_exec_spec.hpp"
#include "layout/generate.hpp"
#include "util/aligned_buffer.hpp"

namespace ibchol {
namespace {

struct SpecCase {
  int n;
  int nb;
  Looking looking;
  MathMode math;
  Triangle triangle;
};

void PrintTo(const SpecCase& c, std::ostream* os) {
  *os << "n" << c.n << "_nb" << c.nb << "_" << to_string(c.looking) << "_"
      << to_string(c.math) << "_" << to_string(c.triangle);
}

// The two executors perform identical arithmetic in identical order; any
// difference comes from the compiler's freedom in contraction/vectorization
// between the runtime-trip-count and unrolled loop bodies, so we demand
// bound-equality at a few-ulp tolerance (and report exact-match counts).
template <typename T>
void expect_bound_equal(const T* a, const T* b, std::size_t count, T tol) {
  for (std::size_t i = 0; i < count; ++i) {
    const T bound = tol * std::max(T{1}, std::abs(a[i]));
    ASSERT_NEAR(a[i], b[i], bound) << "elem " << i;
  }
}

template <typename T>
void run_case(const SpecCase& c, T tol) {
  const auto layout = BatchLayout::interleaved(c.n, kLaneBlock);
  AlignedBuffer<T> interp_data(layout.size_elems());
  generate_spd_batch<T>(layout, interp_data.span(),
                        {SpdKind::kGramPlusDiagonal, 1234, 50.0});
  AlignedBuffer<T> spec_data(layout.size_elems());
  std::copy(interp_data.begin(), interp_data.end(), spec_data.begin());

  const TileProgram program = build_tile_program(c.n, c.nb, c.looking);

  alignas(64) std::int32_t interp_info[kLaneBlock] = {};
  execute_program_lane_block<T>(program, c.math, interp_data.data(),
                                layout.chunk(), interp_info, c.triangle);

  const SpecializedProgram<T> spec(program, c.math);
  EXPECT_EQ(spec.n(), c.n);
  EXPECT_EQ(spec.num_ops(), program.ops.size());
  alignas(64) std::int32_t spec_info[kLaneBlock] = {};
  spec.run(spec_data.data(), layout.chunk(), spec_info, c.triangle);

  for (int l = 0; l < kLaneBlock; ++l) {
    EXPECT_EQ(spec_info[l], interp_info[l]) << "lane " << l;
  }
  expect_bound_equal(interp_data.data(), spec_data.data(),
                     layout.size_elems(), tol);
}

class SpecExecTest : public ::testing::TestWithParam<SpecCase> {};

TEST_P(SpecExecTest, MatchesInterpreterFloat) {
  run_case<float>(GetParam(), 1e-5f);
}

TEST_P(SpecExecTest, MatchesInterpreterDouble) {
  // Fast math only relaxes float; double paths are IEEE either way.
  run_case<double>(GetParam(), 1e-13);
}

std::vector<SpecCase> spec_cases() {
  std::vector<SpecCase> cases;
  // Full variant grid including corner sizes (n % nb != 0) and both
  // triangles.
  for (const int n : {1, 2, 3, 4, 5, 7, 8, 11, 16, 17, 24, 31, 33, 48}) {
    for (const int nb : {1, 2, 3, 5, 8}) {
      if (nb > n) continue;
      for (const auto looking :
           {Looking::kRight, Looking::kLeft, Looking::kTop}) {
        cases.push_back({n, nb, looking, MathMode::kIeee, Triangle::kLower});
      }
      cases.push_back({n, nb, Looking::kTop, MathMode::kIeee,
                       Triangle::kUpper});
    }
  }
  // Fast math: a representative subset.
  for (const int n : {4, 8, 24, 33}) {
    cases.push_back({n, std::min(n, 8), Looking::kTop, MathMode::kFastMath,
                     Triangle::kLower});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(VariantGrid, SpecExecTest,
                         ::testing::ValuesIn(spec_cases()));

// ------------------------------------------------------------- fused -----

class FusedTest : public ::testing::TestWithParam<int> {};

TEST_P(FusedTest, MatchesWholeMatrixInterpreter) {
  const int n = GetParam();
  for (const auto triangle : {Triangle::kLower, Triangle::kUpper}) {
    for (const auto math : {MathMode::kIeee, MathMode::kFastMath}) {
      const auto layout = BatchLayout::interleaved(n, kLaneBlock);
      AlignedBuffer<float> a(layout.size_elems());
      generate_spd_batch<float>(layout, a.span());
      AlignedBuffer<float> b(layout.size_elems());
      std::copy(a.begin(), a.end(), b.begin());

      std::vector<float> scratch(whole_matrix_scratch_elems(n));
      alignas(64) std::int32_t info_a[kLaneBlock] = {};
      execute_whole_matrix_lane_block<float>(n, math, a.data(),
                                             layout.chunk(), info_a,
                                             scratch.data(), triangle);
      alignas(64) std::int32_t info_b[kLaneBlock] = {};
      execute_fused_lane_block<float>(n, math, b.data(), layout.chunk(),
                                      info_b, triangle);
      for (int l = 0; l < kLaneBlock; ++l) EXPECT_EQ(info_a[l], info_b[l]);
      expect_bound_equal(a.data(), b.data(), layout.size_elems(), 1e-5f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FusedTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(SpecExec, FusedInfoReportsFailingColumnPerLane) {
  const int n = 8;
  const auto layout = BatchLayout::interleaved(n, kLaneBlock);
  AlignedBuffer<float> data(layout.size_elems());
  generate_spd_batch<float>(layout, data.span());
  poison_matrix<float>(layout, data.span(), 3, 2);
  poison_matrix<float>(layout, data.span(), 19, 6);
  alignas(64) std::int32_t info[kLaneBlock] = {};
  execute_fused_lane_block<float>(n, MathMode::kIeee, data.data(),
                                  layout.chunk(), info);
  for (int b = 0; b < kLaneBlock; ++b) {
    if (b == 3) {
      EXPECT_EQ(info[b], 3);
    } else if (b == 19) {
      EXPECT_EQ(info[b], 7);
    } else {
      EXPECT_EQ(info[b], 0);
    }
  }
}

TEST(SpecExec, FusedRejectsLargeDimensions) {
  AlignedBuffer<float> data(9 * 9 * kLaneBlock);
  EXPECT_THROW(execute_fused_lane_block<float>(kMaxFusedDim + 1,
                                               MathMode::kIeee, data.data(),
                                               kLaneBlock, nullptr),
               Error);
}

TEST(SpecExec, BindRejectsOversizedTiles) {
  TileProgram p = build_tile_program(16, 8, Looking::kTop);
  p.nb = 9;  // lie about the tile size
  EXPECT_THROW((SpecializedProgram<float>(p, MathMode::kIeee)), Error);
}

TEST(SpecExec, WorksInsideLargerChunk) {
  // Base offset and element stride honored, neighbors untouched — same
  // contract as the interpreter.
  const int n = 6;
  const auto layout = BatchLayout::interleaved_chunked(n, 128, 128);
  AlignedBuffer<float> a(layout.size_elems());
  generate_spd_batch<float>(layout, a.span());
  AlignedBuffer<float> b(layout.size_elems());
  std::copy(a.begin(), a.end(), b.begin());

  const TileProgram program = build_tile_program(n, 3, Looking::kTop);
  execute_program_lane_block<float>(program, MathMode::kIeee, a.data() + 64,
                                    layout.chunk(), nullptr);
  const SpecializedProgram<float> spec(program, MathMode::kIeee);
  spec.run(b.data() + 64, layout.chunk(), nullptr);
  expect_bound_equal(a.data(), b.data(), layout.size_elems(), 1e-5f);
}

}  // namespace
}  // namespace ibchol
