// Tests for the tuned dispatch table.
#include <gtest/gtest.h>

#include "autotune/dispatch.hpp"
#include "autotune/evaluator.hpp"
#include "autotune/sweep.hpp"
#include "core/batch_cholesky.hpp"

namespace ibchol {
namespace {

TunedDispatch small_table() {
  TunedDispatch d;
  TuningParams p8;
  p8.nb = 8;
  p8.unroll = Unroll::kFull;
  d.set(8, p8);
  TuningParams p32;
  p32.nb = 8;
  p32.looking = Looking::kTop;
  p32.unroll = Unroll::kPartial;
  d.set(32, p32);
  return d;
}

TEST(Dispatch, ExactLookup) {
  const TunedDispatch d = small_table();
  EXPECT_EQ(d.size(), 2u);
  ASSERT_TRUE(d.exact(8).has_value());
  EXPECT_EQ(d.exact(8)->unroll, Unroll::kFull);
  EXPECT_FALSE(d.exact(16).has_value());
  EXPECT_EQ(d.lookup(32).looking, Looking::kTop);
}

TEST(Dispatch, NearestFallbackPrefersLargerOnTies) {
  const TunedDispatch d = small_table();
  // n=20 is equidistant-ish: 20-8=12, 32-20=12 -> prefer larger (32).
  EXPECT_EQ(d.lookup(20).unroll, Unroll::kPartial);
  // n=10 is nearer to 8.
  EXPECT_EQ(d.lookup(10).unroll, Unroll::kFull);
}

TEST(Dispatch, ExtrapolationClampsTileSize) {
  const TunedDispatch d = small_table();
  const TuningParams p = d.lookup(3);  // below the smallest entry
  p.validate(3);
  EXPECT_LE(p.effective_nb(3), 3);
  const TuningParams q = d.lookup(64);  // above the largest entry
  q.validate(64);
}

TEST(Dispatch, EmptyTableFallsBackToRecommended) {
  const TunedDispatch d;
  EXPECT_EQ(d.lookup(48).key(), recommended_params(48).key());
}

TEST(Dispatch, CsvRoundTrip) {
  const TunedDispatch d = small_table();
  const TunedDispatch back = TunedDispatch::from_csv(d.to_csv());
  EXPECT_EQ(back.size(), d.size());
  EXPECT_EQ(back.lookup(8).key(), d.lookup(8).key());
  EXPECT_EQ(back.lookup(32).key(), d.lookup(32).key());
}

TEST(Dispatch, FromDatasetPicksWinners) {
  ModelEvaluator eval{KernelModel(GpuSpec::p100())};
  SweepOptions opt;
  opt.sizes = {8, 24};
  opt.space.tile_sizes = {1, 8};
  opt.space.chunk_sizes = {32};
  const SweepDataset ds = run_sweep(eval, opt);
  const TunedDispatch d = TunedDispatch::from_dataset(ds);
  EXPECT_EQ(d.size(), 2u);
  // The table's pick must equal the dataset's best.
  EXPECT_EQ(d.lookup(24).key(), ds.best(24)->params.key());
}

TEST(Dispatch, LookupResultAlwaysUsable) {
  const TunedDispatch d = small_table();
  for (const int n : {1, 2, 5, 8, 13, 20, 32, 40, 64, 100}) {
    const TuningParams p = d.lookup(n);
    p.validate(n);
    // And it must drive an actual factorization.
    const BatchLayout layout = BatchCholesky::make_layout(n, 32, p);
    EXPECT_EQ(layout.n(), n);
  }
}

TEST(Dispatch, SetRejectsInvalid) {
  TunedDispatch d;
  TuningParams bad;
  bad.chunk_size = 40;
  EXPECT_THROW(d.set(8, bad), Error);
}

}  // namespace
}  // namespace ibchol
