// Tests for the vectorized (explicit-SIMD) executor.
//
// The load-bearing property is the math-policy contract: under IEEE math
// every tier of the vectorized executor performs the same correctly-rounded
// sqrt/div/fma sequence as the interpreter oracle, in the same per-element
// order, so the factors must be IDENTICAL BITS — across layouts, triangles,
// matrix sizes, unrolling modes, and element types. Fast math maps to each
// tier's native approximation and is only held to a relative bound.
//
// Bit-identity is asserted only when this test TU is compiled with FMA
// available (__FMA__): the interpreter's update loops are written as
// `c -= a*b` and rely on the compiler contracting them to fused
// multiply-adds to match the vectorized executor's explicit FMAs. Without
// FMA the whole build has no contraction anywhere and the comparison
// degrades to the same few-ulp bound the specialized executor is held to.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "cpu/batch_factor.hpp"
#include "cpu/simd/isa.hpp"
#include "cpu/simd/vec_exec.hpp"
#include "layout/generate.hpp"
#include "util/aligned_buffer.hpp"
#include "util/error.hpp"

namespace ibchol {
namespace {

struct VecCase {
  int n;
  LayoutKind layout;
  Triangle triangle;
  Unroll unroll;
};

void PrintTo(const VecCase& c, std::ostream* os) {
  *os << "n" << c.n << "_"
      << (c.layout == LayoutKind::kInterleaved ? "interleaved" : "chunked")
      << "_" << to_string(c.triangle) << "_" << to_string(c.unroll);
}

BatchLayout make_layout(const VecCase& c, std::int64_t batch) {
  return c.layout == LayoutKind::kInterleaved
             ? BatchLayout::interleaved(c.n, batch)
             : BatchLayout::interleaved_chunked(c.n, batch, 64);
}

// Factors a fresh copy of `orig` with the given executor and returns the
// factored buffer plus per-matrix info.
template <typename T>
AlignedBuffer<T> factor_with(const BatchLayout& layout,
                             const AlignedBuffer<T>& orig,
                             const CpuFactorOptions& options,
                             std::vector<std::int32_t>& info) {
  AlignedBuffer<T> data(layout.size_elems());
  std::copy(orig.begin(), orig.end(), data.begin());
  info.assign(static_cast<std::size_t>(layout.batch()), 0);
  (void)factor_batch_cpu<T>(layout, data.span(), options,
                            std::span<std::int32_t>(info));
  return data;
}

template <typename T>
void expect_bound_equal(const T* a, const T* b, std::size_t count, T tol) {
  for (std::size_t i = 0; i < count; ++i) {
    const T bound = tol * std::max(T{1}, std::abs(a[i]));
    ASSERT_NEAR(a[i], b[i], bound) << "elem " << i;
  }
}

template <typename T>
void run_ieee_case(const VecCase& c, SimdIsa isa, T tol) {
  const std::int64_t batch = 3 * kLaneBlock;  // several lane blocks
  const BatchLayout layout = make_layout(c, batch);
  AlignedBuffer<T> orig(layout.size_elems());
  generate_spd_batch<T>(layout, orig.span(),
                        {SpdKind::kGramPlusDiagonal, 4321, 50.0});

  CpuFactorOptions opt;
  opt.nb = std::min(8, c.n);
  opt.unroll = c.unroll;
  opt.math = MathMode::kIeee;
  opt.triangle = c.triangle;

  std::vector<std::int32_t> ref_info, vec_info;
  opt.exec = CpuExec::kInterpreter;
  const AlignedBuffer<T> ref = factor_with(layout, orig, opt, ref_info);
  opt.exec = CpuExec::kVectorized;
  opt.isa = isa;
  const AlignedBuffer<T> vec = factor_with(layout, orig, opt, vec_info);

  EXPECT_EQ(ref_info, vec_info);
#if defined(__FMA__)
  (void)tol;
  EXPECT_EQ(std::memcmp(ref.data(), vec.data(),
                        layout.size_elems() * sizeof(T)),
            0)
      << "IEEE factors must be bit-identical to the interpreter";
#else
  expect_bound_equal(ref.data(), vec.data(), layout.size_elems(), tol);
#endif
}

class VecExecTest : public ::testing::TestWithParam<VecCase> {};

TEST_P(VecExecTest, IeeeMatchesInterpreterFloat) {
  run_ieee_case<float>(GetParam(), SimdIsa::kAuto, 1e-5f);
}

TEST_P(VecExecTest, IeeeMatchesInterpreterDouble) {
  run_ieee_case<double>(GetParam(), SimdIsa::kAuto, 1e-13);
}

// Every explicitly requested tier must give the same (bit-identical under
// FMA) answer: requests above the host's capability clamp down, so this is
// safe to run anywhere, and on an AVX-512 host it genuinely exercises all
// three tiers.
TEST_P(VecExecTest, IeeeIdenticalOnEveryTier) {
  for (const SimdIsa isa :
       {SimdIsa::kScalar, SimdIsa::kAvx2, SimdIsa::kAvx512}) {
    run_ieee_case<float>(GetParam(), isa, 1e-5f);
  }
}

std::vector<VecCase> vec_cases() {
  std::vector<VecCase> cases;
  // n spans the fused range (<= 16), the runtime-n whole-matrix range
  // (<= 64), the interpreter fallback past it (65), and tile-program corner
  // dims (n % nb != 0).
  for (const int n : {1, 2, 3, 4, 5, 7, 8, 11, 16, 17, 24, 31, 33, 48, 64,
                      65}) {
    for (const auto layout :
         {LayoutKind::kInterleaved, LayoutKind::kInterleavedChunked}) {
      for (const auto triangle : {Triangle::kLower, Triangle::kUpper}) {
        for (const auto unroll : {Unroll::kFull, Unroll::kPartial}) {
          cases.push_back({n, layout, triangle, unroll});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Grid, VecExecTest, ::testing::ValuesIn(vec_cases()),
                         ::testing::PrintToStringParamName());

// ----------------------------------------------------------- fast math ---

// Fast math uses each tier's native rsqrt/rcp plus one Newton step: a
// relative error bound, not bit-identity. Held against the interpreter's
// IEEE factor, which bounds the approximation error end to end.
TEST(VecExecFastMath, BoundedRelativeError) {
  for (const int n : {4, 8, 16, 24, 33, 64}) {
    const VecCase c{n, LayoutKind::kInterleaved, Triangle::kLower,
                    Unroll::kFull};
    const BatchLayout layout = make_layout(c, kLaneBlock);
    AlignedBuffer<float> orig(layout.size_elems());
    generate_spd_batch<float>(layout, orig.span(),
                              {SpdKind::kGramPlusDiagonal, 99, 50.0});

    CpuFactorOptions opt;
    opt.unroll = Unroll::kFull;
    opt.triangle = c.triangle;
    std::vector<std::int32_t> ref_info, fast_info;
    opt.exec = CpuExec::kInterpreter;
    opt.math = MathMode::kIeee;
    const auto ref = factor_with(layout, orig, opt, ref_info);
    opt.exec = CpuExec::kVectorized;
    opt.math = MathMode::kFastMath;
    const auto fast = factor_with(layout, orig, opt, fast_info);

    EXPECT_EQ(ref_info, fast_info) << "n=" << n;
    expect_bound_equal(ref.data(), fast.data(), layout.size_elems(), 1e-4f);
  }
}

// ------------------------------------------------------- info / pivots ---

// Indefinite lanes: the vectorized executor must report the same 1-based
// first-bad-pivot column as the interpreter, lane for lane, and leave
// healthy lanes bit-identical.
TEST(VecExecInfo, MatchesInterpreterOnIndefiniteLanes) {
  const int n = 16;
  for (const auto unroll : {Unroll::kFull, Unroll::kPartial}) {
    const BatchLayout layout = BatchLayout::interleaved(n, kLaneBlock);
    AlignedBuffer<float> orig(layout.size_elems());
    generate_spd_batch<float>(layout, orig.span(),
                              {SpdKind::kGramPlusDiagonal, 7, 50.0});
    // Break a different diagonal entry in every 3rd lane.
    for (int l = 0; l < kLaneBlock; l += 3) {
      const int k = l % n;
      orig[layout.index(l, k, k)] = -1.0f;
    }

    CpuFactorOptions opt;
    opt.unroll = unroll;
    std::vector<std::int32_t> ref_info, vec_info;
    opt.exec = CpuExec::kInterpreter;
    const auto ref = factor_with(layout, orig, opt, ref_info);
    opt.exec = CpuExec::kVectorized;
    const auto vec = factor_with(layout, orig, opt, vec_info);

    ASSERT_EQ(ref_info, vec_info);
    for (int l = 0; l < kLaneBlock; l += 3) {
      EXPECT_NE(ref_info[static_cast<std::size_t>(l)], 0) << "lane " << l;
    }
#if defined(__FMA__)
    EXPECT_EQ(std::memcmp(ref.data(), vec.data(),
                          layout.size_elems() * sizeof(float)),
              0);
#endif
  }
}

// ------------------------------------------------------------ dispatch ---

// Clears an ambient IBCHOL_SIMD_ISA for the test's duration (check.sh runs
// the whole suite with the override set; the dispatch tests that probe
// default resolution must not inherit it), restoring it afterwards.
class ScopedClearSimdEnv {
 public:
  ScopedClearSimdEnv() {
    if (const char* v = std::getenv("IBCHOL_SIMD_ISA")) {
      saved_ = v;
      unsetenv("IBCHOL_SIMD_ISA");
    }
  }
  ~ScopedClearSimdEnv() {
    if (saved_.has_value()) setenv("IBCHOL_SIMD_ISA", saved_->c_str(), 1);
  }

 private:
  std::optional<std::string> saved_;
};

TEST(SimdDispatch, DetectedTierIsSane) {
  const ScopedClearSimdEnv env;
  const SimdIsa detected = detect_simd_isa();
  EXPECT_NE(detected, SimdIsa::kAuto);
  EXPECT_EQ(resolve_simd_isa(SimdIsa::kAuto), detected);
}

TEST(SimdDispatch, RequestsClampToDetectedTier) {
  const ScopedClearSimdEnv env;
  const SimdIsa detected = detect_simd_isa();
  for (const SimdIsa req :
       {SimdIsa::kScalar, SimdIsa::kAvx2, SimdIsa::kAvx512}) {
    const SimdIsa got = resolve_simd_isa(req);
    EXPECT_LE(static_cast<int>(got), static_cast<int>(detected));
    EXPECT_LE(static_cast<int>(got), static_cast<int>(req));
    if (static_cast<int>(req) <= static_cast<int>(detected)) {
      EXPECT_EQ(got, req);
    }
  }
}

TEST(SimdDispatch, EnvOverrideForcesTier) {
  const ScopedClearSimdEnv env;
  ASSERT_EQ(setenv("IBCHOL_SIMD_ISA", "scalar", 1), 0);
  EXPECT_EQ(resolve_simd_isa(SimdIsa::kAuto), SimdIsa::kScalar);
  EXPECT_EQ(resolve_simd_isa(SimdIsa::kAvx512), SimdIsa::kScalar);
  EXPECT_EQ(vec_kernels<float>(SimdIsa::kAuto).tier, SimdIsa::kScalar);
  // Typo'd overrides are ignored rather than faulting.
  ASSERT_EQ(setenv("IBCHOL_SIMD_ISA", "avx9000", 1), 0);
  EXPECT_EQ(resolve_simd_isa(SimdIsa::kAuto), detect_simd_isa());
  ASSERT_EQ(unsetenv("IBCHOL_SIMD_ISA"), 0);
}

TEST(SimdDispatch, KernelTablesReportTheirTier) {
  // The scalar table always exists and says so; upper tiers either report
  // themselves or (when the compiler could not build them) decay downward.
  EXPECT_EQ(vec_kernels_scalar<float>().tier, SimdIsa::kScalar);
  EXPECT_GE(vec_kernels_scalar<float>().width, 1);
  EXPECT_LE(static_cast<int>(vec_kernels_avx2<double>().tier),
            static_cast<int>(SimdIsa::kAvx2));
  EXPECT_LE(static_cast<int>(vec_kernels_avx512<double>().tier),
            static_cast<int>(SimdIsa::kAvx512));
}

// ----------------------------------------------------------- alignment ---

TEST(VecExecAlignment, RejectsUnalignedData) {
  const int n = 8;
  const BatchLayout layout = BatchLayout::interleaved(n, kLaneBlock);
  AlignedBuffer<float> data(layout.size_elems() + 16);
  CpuFactorOptions opt;
  opt.exec = CpuExec::kVectorized;
  // A span starting one element past an aligned base cannot be factored by
  // the vectorized executor; it must fail loudly, not crash in a kernel.
  std::span<float> shifted(data.data() + 1, layout.size_elems());
  EXPECT_THROW((void)factor_batch_cpu<float>(layout, shifted, opt), Error);
}

}  // namespace
}  // namespace ibchol
