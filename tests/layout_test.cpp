// Tests for src/layout: index maps, padding, strides, conversions.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "layout/convert.hpp"
#include "layout/layout.hpp"
#include "layout/vector_layout.hpp"
#include "util/error.hpp"

namespace ibchol {
namespace {

// -------------------------------------------------------- construction --

TEST(Layout, CanonicalShape) {
  const auto l = BatchLayout::canonical(5, 100);
  EXPECT_EQ(l.kind(), LayoutKind::kCanonical);
  EXPECT_EQ(l.padded_batch(), 100);
  EXPECT_EQ(l.size_elems(), 5u * 5u * 100u);
  EXPECT_EQ(l.chunk(), 1);
  EXPECT_EQ(l.num_chunks(), 100);
}

TEST(Layout, InterleavedPadsToWarp) {
  const auto l = BatchLayout::interleaved(3, 100);
  EXPECT_EQ(l.padded_batch(), 128);  // next multiple of 32
  EXPECT_EQ(l.size_elems(), 3u * 3u * 128u);
  EXPECT_EQ(l.chunk(), 128);  // simple interleaved = one big chunk
  EXPECT_EQ(l.num_chunks(), 1);
}

TEST(Layout, InterleavedExactMultipleNotPadded) {
  const auto l = BatchLayout::interleaved(4, 64);
  EXPECT_EQ(l.padded_batch(), 64);
}

TEST(Layout, ChunkedPadsToChunk) {
  const auto l = BatchLayout::interleaved_chunked(4, 100, 64);
  EXPECT_EQ(l.padded_batch(), 128);
  EXPECT_EQ(l.chunk(), 64);
  EXPECT_EQ(l.num_chunks(), 2);
}

TEST(Layout, RejectsInvalidShapes) {
  EXPECT_THROW((void)BatchLayout::canonical(0, 10), Error);
  EXPECT_THROW((void)BatchLayout::canonical(4, 0), Error);
  EXPECT_THROW((void)BatchLayout::interleaved_chunked(4, 10, 48), Error);
  EXPECT_THROW((void)BatchLayout::interleaved_chunked(4, 10, 0), Error);
}

// ----------------------------------------------------------- index maps --

TEST(Layout, CanonicalIndexFormula) {
  const auto l = BatchLayout::canonical(4, 10);
  // offset = b*n^2 + j*n + i
  EXPECT_EQ(l.index(0, 0, 0), 0u);
  EXPECT_EQ(l.index(0, 2, 1), 6u);
  EXPECT_EQ(l.index(3, 1, 2), 3u * 16u + 2u * 4u + 1u);
}

TEST(Layout, InterleavedIndexFormula) {
  const auto l = BatchLayout::interleaved(4, 64);
  // offset = (j*n + i)*B + b
  EXPECT_EQ(l.index(5, 0, 0), 5u);
  EXPECT_EQ(l.index(5, 2, 1), (1u * 4u + 2u) * 64u + 5u);
}

TEST(Layout, ChunkedIndexFormula) {
  const auto l = BatchLayout::interleaved_chunked(3, 128, 32);
  // offset = (b/C)*n^2*C + (j*n + i)*C + b%C
  EXPECT_EQ(l.index(40, 2, 1), (40u / 32u) * 9u * 32u + (1u * 3u + 2u) * 32u +
                                   (40u % 32u));
}

TEST(Layout, ChunkedMatchesInterleavedWithinFirstChunk) {
  const auto chunked = BatchLayout::interleaved_chunked(5, 32, 32);
  const auto simple = BatchLayout::interleaved(5, 32);
  for (int b = 0; b < 32; ++b) {
    for (int j = 0; j < 5; ++j) {
      for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(chunked.index(b, i, j), simple.index(b, i, j));
      }
    }
  }
}

// Property: every layout's index map is a bijection onto [0, size).
class LayoutBijection
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(LayoutBijection, IndexMapIsBijective) {
  const auto [n, batch, chunk] = GetParam();
  std::vector<BatchLayout> layouts{BatchLayout::canonical(n, batch),
                                   BatchLayout::interleaved(n, batch)};
  if (chunk > 0) {
    layouts.push_back(BatchLayout::interleaved_chunked(n, batch, chunk));
  }
  for (const auto& l : layouts) {
    std::set<std::size_t> seen;
    const std::int64_t matrices =
        l.kind() == LayoutKind::kCanonical ? l.batch() : l.padded_batch();
    for (std::int64_t b = 0; b < matrices; ++b) {
      for (int j = 0; j < n; ++j) {
        for (int i = 0; i < n; ++i) {
          const std::size_t off = l.index(b, i, j);
          EXPECT_LT(off, l.size_elems()) << l.to_string();
          EXPECT_TRUE(seen.insert(off).second)
              << "duplicate offset in " << l.to_string();
        }
      }
    }
    EXPECT_EQ(seen.size(), l.size_elems()) << l.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LayoutBijection,
    ::testing::Values(std::make_tuple(1, 7, 32), std::make_tuple(3, 32, 32),
                      std::make_tuple(4, 100, 64), std::make_tuple(7, 65, 32),
                      std::make_tuple(8, 256, 128),
                      std::make_tuple(5, 31, 96)));

// --------------------------------------------------------------- strides --

TEST(Layout, BatchStrideWithinChunk) {
  EXPECT_EQ(BatchLayout::canonical(4, 8).batch_stride_within_chunk(), 16);
  EXPECT_EQ(BatchLayout::interleaved(4, 64).batch_stride_within_chunk(), 1);
  EXPECT_EQ(
      BatchLayout::interleaved_chunked(4, 64, 32).batch_stride_within_chunk(),
      1);
}

TEST(Layout, ElementStride) {
  EXPECT_EQ(BatchLayout::canonical(4, 8).element_stride(), 1);
  EXPECT_EQ(BatchLayout::interleaved(4, 64).element_stride(), 64);
  EXPECT_EQ(BatchLayout::interleaved_chunked(4, 64, 32).element_stride(), 32);
}

TEST(Layout, ChunkBase) {
  const auto l = BatchLayout::interleaved_chunked(4, 128, 32);
  EXPECT_EQ(l.chunk_base(0), 0u);
  EXPECT_EQ(l.chunk_base(31), 0u);
  EXPECT_EQ(l.chunk_base(32), 16u * 32u);
  EXPECT_EQ(l.chunk_base(95), 2u * 16u * 32u);
}

TEST(Layout, StrideConsistentWithIndex) {
  const auto l = BatchLayout::interleaved_chunked(6, 96, 32);
  // element_stride: consecutive elements down a column
  EXPECT_EQ(l.index(5, 1, 0) - l.index(5, 0, 0),
            static_cast<std::size_t>(l.element_stride()));
  // batch stride within chunk
  EXPECT_EQ(l.index(6, 2, 3) - l.index(5, 2, 3),
            static_cast<std::size_t>(l.batch_stride_within_chunk()));
}

// ---------------------------------------------------------- conversions --

class ConvertTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ConvertTest, AllPairsRoundTrip) {
  const auto [n, batch] = GetParam();
  const std::vector<BatchLayout> layouts{
      BatchLayout::canonical(n, batch), BatchLayout::interleaved(n, batch),
      BatchLayout::interleaved_chunked(n, batch, 32),
      BatchLayout::interleaved_chunked(n, batch, 64)};

  // Fill a canonical master with distinct values.
  const auto& canon = layouts[0];
  std::vector<float> master(canon.size_elems());
  for (std::int64_t b = 0; b < batch; ++b) {
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) {
        master[canon.index(b, i, j)] =
            static_cast<float>(b * 1000 + j * 10 + i);
      }
    }
  }

  for (const auto& from : layouts) {
    for (const auto& to : layouts) {
      if (from == to) continue;
      // canonical -> from -> to -> canonical must reproduce master.
      std::vector<float> a(from.size_elems());
      std::vector<float> b2(to.size_elems());
      std::vector<float> back(canon.size_elems());
      convert_layout<float>(canon, master, from, a);
      convert_layout<float>(from, a, to, b2);
      convert_layout<float>(to, b2, canon, back);
      EXPECT_EQ(master, back) << from.to_string() << " -> " << to.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, ConvertTest,
                         ::testing::Values(std::make_tuple(1, 5),
                                           std::make_tuple(3, 64),
                                           std::make_tuple(5, 100),
                                           std::make_tuple(8, 33)));

TEST(Convert, PaddingFilledWithIdentity) {
  const auto l = BatchLayout::interleaved_chunked(3, 10, 32);
  const auto canon = BatchLayout::canonical(3, 10);
  std::vector<float> src(canon.size_elems(), 7.0f);
  std::vector<float> dst(l.size_elems());
  convert_layout<float>(canon, src, l, dst);
  for (std::int64_t b = 10; b < l.padded_batch(); ++b) {
    for (int j = 0; j < 3; ++j) {
      for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(dst[l.index(b, i, j)], i == j ? 1.0f : 0.0f);
      }
    }
  }
}

TEST(Convert, RejectsShapeMismatch) {
  const auto a = BatchLayout::canonical(4, 10);
  const auto b = BatchLayout::canonical(5, 10);
  std::vector<float> src(a.size_elems());
  std::vector<float> dst(b.size_elems());
  EXPECT_THROW(convert_layout<float>(a, src, b, dst), Error);
}

TEST(Convert, RejectsUndersizedSpans) {
  const auto a = BatchLayout::canonical(4, 10);
  std::vector<float> src(a.size_elems() - 1);
  std::vector<float> dst(a.size_elems());
  const auto il = BatchLayout::interleaved(4, 10);
  std::vector<float> dst2(il.size_elems());
  EXPECT_THROW(convert_layout<float>(a, src, il, dst2), Error);
}

TEST(Convert, RejectsAliasedBuffers) {
  const auto a = BatchLayout::canonical(4, 32);
  const auto b = BatchLayout::interleaved(4, 32);
  std::vector<float> buf(b.size_elems());
  EXPECT_THROW(
      convert_layout<float>(a, std::span<const float>(buf.data(), buf.size()),
                            b, std::span<float>(buf.data(), buf.size())),
      Error);
}

TEST(Convert, ExtractInsertRoundTrip) {
  const auto l = BatchLayout::interleaved_chunked(4, 50, 32);
  std::vector<double> data(l.size_elems());
  std::vector<double> m(16);
  for (int k = 0; k < 16; ++k) m[k] = k + 1.5;
  insert_matrix<double>(l, data, 17, m);
  std::vector<double> out(16);
  extract_matrix<double>(l, data, 17, out);
  EXPECT_EQ(m, out);
}

TEST(Convert, ExtractRejectsOutOfRange) {
  const auto l = BatchLayout::canonical(4, 10);
  std::vector<float> data(l.size_elems());
  std::vector<float> out(16);
  EXPECT_THROW(extract_matrix<float>(l, data, 10, out), Error);
  EXPECT_THROW(extract_matrix<float>(l, data, -1, out), Error);
}

// --------------------------------------------------------- vector layout --

TEST(VectorLayout, MatchingFollowsMatrixLayout) {
  const auto m = BatchLayout::interleaved_chunked(8, 100, 64);
  const auto v = BatchVectorLayout::matching(m);
  EXPECT_EQ(v.kind(), LayoutKind::kInterleavedChunked);
  EXPECT_EQ(v.chunk(), 64);
  EXPECT_EQ(v.padded_batch(), m.padded_batch());
  EXPECT_EQ(v.size_elems(), 8u * 128u);
}

TEST(VectorLayout, IndexBijective) {
  for (const auto& v :
       {BatchVectorLayout::canonical(5, 10), BatchVectorLayout::interleaved(5, 40),
        BatchVectorLayout::interleaved_chunked(5, 70, 32)}) {
    std::set<std::size_t> seen;
    const std::int64_t count =
        v.kind() == LayoutKind::kCanonical ? v.batch() : v.padded_batch();
    for (std::int64_t b = 0; b < count; ++b) {
      for (int i = 0; i < v.n(); ++i) {
        const auto off = v.index(b, i);
        EXPECT_LT(off, v.size_elems());
        EXPECT_TRUE(seen.insert(off).second);
      }
    }
  }
}

TEST(VectorLayout, CanonicalIndexFormula) {
  const auto v = BatchVectorLayout::canonical(4, 10);
  EXPECT_EQ(v.index(2, 3), 2u * 4u + 3u);
}

// ------------------------------------------------------------- misc ------

TEST(Layout, ToStringMentionsKindAndShape) {
  const auto l = BatchLayout::interleaved_chunked(4, 100, 64);
  const std::string s = l.to_string();
  EXPECT_NE(s.find("interleaved_chunked"), std::string::npos);
  EXPECT_NE(s.find("n=4"), std::string::npos);
  EXPECT_NE(s.find("chunk=64"), std::string::npos);
}

TEST(Layout, RoundUpHelper) {
  EXPECT_EQ(round_up(0, 32), 0);
  EXPECT_EQ(round_up(1, 32), 32);
  EXPECT_EQ(round_up(32, 32), 32);
  EXPECT_EQ(round_up(33, 32), 64);
}

}  // namespace
}  // namespace ibchol
