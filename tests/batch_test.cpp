// Tests for the batch factorization and solve drivers.
#include <gtest/gtest.h>

#include <vector>

#include "cpu/batch_factor.hpp"
#include "cpu/batch_solve.hpp"
#include "cpu/reference.hpp"
#include "layout/convert.hpp"
#include "layout/generate.hpp"
#include "util/aligned_buffer.hpp"

namespace ibchol {
namespace {

struct BatchCase {
  int n;
  std::int64_t batch;
  LayoutKind kind;
  int chunk;
  Unroll unroll;
};

void PrintTo(const BatchCase& c, std::ostream* os) {
  *os << "n" << c.n << "_b" << c.batch << "_" << to_string(c.kind) << "_c"
      << c.chunk << "_" << to_string(c.unroll);
}

BatchLayout make_layout(const BatchCase& c) {
  switch (c.kind) {
    case LayoutKind::kCanonical:
      return BatchLayout::canonical(c.n, c.batch);
    case LayoutKind::kInterleaved:
      return BatchLayout::interleaved(c.n, c.batch);
    case LayoutKind::kInterleavedChunked:
      return BatchLayout::interleaved_chunked(c.n, c.batch, c.chunk);
  }
  throw Error("bad kind");
}

class BatchFactorTest : public ::testing::TestWithParam<BatchCase> {};

TEST_P(BatchFactorTest, WholeBatchMatchesReference) {
  const BatchCase c = GetParam();
  const BatchLayout layout = make_layout(c);
  AlignedBuffer<float> data(layout.size_elems());
  generate_spd_batch<float>(layout, data.span());

  // Keep originals for verification.
  std::vector<float> orig(data.begin(), data.end());

  CpuFactorOptions opt;
  opt.nb = 4;
  opt.looking = Looking::kTop;
  opt.unroll = c.unroll;
  std::vector<std::int32_t> info(c.batch, -1);
  const FactorResult res = factor_batch_cpu<float>(layout, data.span(), opt,
                                                   info);
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.first_failed, -1);
  for (const auto i : info) EXPECT_EQ(i, 0);

  // Spot-check several matrices against an independent factorization.
  std::vector<float> a(c.n * c.n), got(c.n * c.n);
  for (const std::int64_t b :
       {std::int64_t{0}, c.batch / 3, c.batch - 1}) {
    extract_matrix<float>(layout, std::span<const float>(orig), b, a);
    ASSERT_EQ(potrf_unblocked(c.n, a.data(), c.n), 0);
    extract_matrix<float>(layout, std::span<const float>(data.span()), b, got);
    for (int j = 0; j < c.n; ++j) {
      for (int i = j; i < c.n; ++i) {
        EXPECT_NEAR(got[i + static_cast<std::size_t>(j) * c.n],
                    a[i + static_cast<std::size_t>(j) * c.n], 5e-4)
            << "b=" << b;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BatchFactorTest,
    ::testing::Values(
        BatchCase{5, 100, LayoutKind::kCanonical, 0, Unroll::kPartial},
        BatchCase{5, 100, LayoutKind::kInterleaved, 0, Unroll::kPartial},
        BatchCase{5, 100, LayoutKind::kInterleavedChunked, 32,
                  Unroll::kPartial},
        BatchCase{16, 333, LayoutKind::kInterleavedChunked, 64,
                  Unroll::kPartial},
        BatchCase{16, 333, LayoutKind::kInterleavedChunked, 64, Unroll::kFull},
        BatchCase{24, 64, LayoutKind::kInterleaved, 0, Unroll::kFull},
        BatchCase{33, 128, LayoutKind::kInterleavedChunked, 128,
                  Unroll::kPartial},
        BatchCase{8, 31, LayoutKind::kInterleavedChunked, 32,
                  Unroll::kPartial}));

TEST(BatchFactor, FailureAggregation) {
  const auto layout = BatchLayout::interleaved_chunked(8, 200, 32);
  AlignedBuffer<float> data(layout.size_elems());
  generate_spd_batch<float>(layout, data.span());
  poison_matrix<float>(layout, data.span(), 50, 1);
  poison_matrix<float>(layout, data.span(), 150, 4);
  std::vector<std::int32_t> info(200);
  const FactorResult res =
      factor_batch_cpu<float>(layout, data.span(), {}, info);
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.failed_count, 2);
  EXPECT_EQ(res.first_failed, 50);
  EXPECT_EQ(info[50], 2);
  EXPECT_EQ(info[150], 5);
  EXPECT_EQ(info[0], 0);
}

TEST(BatchFactor, CanonicalFailureAggregation) {
  const auto layout = BatchLayout::canonical(8, 100);
  AlignedBuffer<double> data(layout.size_elems());
  generate_spd_batch<double>(layout, data.span());
  poison_matrix<double>(layout, data.span(), 99, 7);
  std::vector<std::int32_t> info(100);
  const FactorResult res =
      factor_batch_cpu<double>(layout, data.span(), {}, info);
  EXPECT_EQ(res.failed_count, 1);
  EXPECT_EQ(res.first_failed, 99);
  EXPECT_EQ(info[99], 8);
}

TEST(BatchFactor, PaddingMatricesDoNotFail) {
  // 33 matrices in chunks of 32 -> 31 identity padding matrices; they must
  // factor cleanly (identity) and not contribute failures.
  const auto layout = BatchLayout::interleaved_chunked(4, 33, 32);
  AlignedBuffer<float> data(layout.size_elems());
  generate_spd_batch<float>(layout, data.span());
  const FactorResult res = factor_batch_cpu<float>(layout, data.span(), {});
  EXPECT_TRUE(res.ok());
}

TEST(BatchFactor, RejectsUndersizedSpans) {
  const auto layout = BatchLayout::interleaved(4, 64);
  AlignedBuffer<float> data(layout.size_elems() - 1);
  EXPECT_THROW((void)factor_batch_cpu<float>(layout, data.span(), {}), Error);
}

TEST(BatchFactor, RejectsUndersizedInfo) {
  const auto layout = BatchLayout::interleaved(4, 64);
  AlignedBuffer<float> data(layout.size_elems());
  std::vector<std::int32_t> info(10);
  EXPECT_THROW((void)factor_batch_cpu<float>(layout, data.span(), {}, info),
               Error);
}

TEST(BatchFactor, WithProgramRejectsMismatchedDimensions) {
  const auto layout = BatchLayout::interleaved(8, 64);
  AlignedBuffer<float> data(layout.size_elems());
  const TileProgram program = build_tile_program(16, 4, Looking::kTop);
  EXPECT_THROW((void)factor_batch_cpu_with_program<float>(
                   layout, data.span(), program, {}),
               Error);
}

TEST(BatchFactor, WithProgramRejectsCanonical) {
  const auto layout = BatchLayout::canonical(8, 64);
  AlignedBuffer<float> data(layout.size_elems());
  const TileProgram program = build_tile_program(8, 4, Looking::kTop);
  EXPECT_THROW((void)factor_batch_cpu_with_program<float>(
                   layout, data.span(), program, {}),
               Error);
}

TEST(BatchFactor, NbClampedToN) {
  // nb = 8 on 3x3 matrices must work (clamped to the dimension).
  const auto layout = BatchLayout::interleaved(3, 64);
  AlignedBuffer<float> data(layout.size_elems());
  generate_spd_batch<float>(layout, data.span());
  CpuFactorOptions opt;
  opt.nb = 8;
  EXPECT_TRUE(factor_batch_cpu<float>(layout, data.span(), opt).ok());
}

template <typename T>
void expect_exec_equal(const BatchLayout& layout, const CpuFactorOptions& base,
                       T tol) {
  AlignedBuffer<T> interp(layout.size_elems()), spec(layout.size_elems());
  generate_spd_batch<T>(layout, interp.span());
  std::copy(interp.begin(), interp.end(), spec.begin());

  CpuFactorOptions oi = base;
  oi.exec = CpuExec::kInterpreter;
  CpuFactorOptions os = base;
  os.exec = CpuExec::kSpecialized;
  std::vector<std::int32_t> info_i(layout.batch()), info_s(layout.batch());
  const FactorResult ri = factor_batch_cpu<T>(layout, interp.span(), oi,
                                              info_i);
  const FactorResult rs = factor_batch_cpu<T>(layout, spec.span(), os,
                                              info_s);
  EXPECT_EQ(ri.failed_count, rs.failed_count);
  EXPECT_EQ(ri.first_failed, rs.first_failed);
  EXPECT_EQ(info_i, info_s);
  for (std::size_t i = 0; i < interp.size(); ++i) {
    ASSERT_NEAR(interp[i], spec[i],
                tol * std::max(T{1}, std::abs(interp[i])))
        << "elem " << i;
  }
}

TEST(BatchFactor, ExecutorsAgreeAcrossVariants) {
  // The specialized executor must match the interpreter through the public
  // driver: tile sizes (incl. n % nb != 0), looking orders, both unroll
  // modes (full engages the fused path for n <= 8), both triangles, both
  // element types.
  for (const int n : {3, 8, 11, 24}) {
    for (const int nb : {1, 3, 8}) {
      const auto layout = BatchLayout::interleaved_chunked(n, 70, 32);
      CpuFactorOptions opt;
      opt.nb = nb;
      for (const auto looking :
           {Looking::kRight, Looking::kLeft, Looking::kTop}) {
        opt.looking = looking;
        expect_exec_equal<float>(layout, opt, 1e-5f);
      }
      opt.triangle = Triangle::kUpper;
      expect_exec_equal<double>(layout, opt, 1e-13);
    }
  }
  // Full unroll: fused specialization vs whole-matrix interpreter.
  for (const int n : {2, 5, 8}) {
    const auto layout = BatchLayout::interleaved(n, 64);
    CpuFactorOptions opt;
    opt.unroll = Unroll::kFull;
    expect_exec_equal<float>(layout, opt, 1e-5f);
    opt.math = MathMode::kFastMath;
    expect_exec_equal<float>(layout, opt, 1e-5f);
  }
}

TEST(BatchFactor, ExecutorsAgreeOnFailures) {
  // Poisoned matrices must report identical per-lane pivot columns under
  // both executors, fused path included.
  for (const auto unroll : {Unroll::kPartial, Unroll::kFull}) {
    const auto layout = BatchLayout::interleaved_chunked(8, 200, 32);
    AlignedBuffer<float> a(layout.size_elems()), b(layout.size_elems());
    generate_spd_batch<float>(layout, a.span());
    poison_matrix<float>(layout, a.span(), 50, 1);
    poison_matrix<float>(layout, a.span(), 150, 4);
    std::copy(a.begin(), a.end(), b.begin());
    CpuFactorOptions oi;
    oi.unroll = unroll;
    oi.exec = CpuExec::kInterpreter;
    CpuFactorOptions os = oi;
    os.exec = CpuExec::kSpecialized;
    std::vector<std::int32_t> info_i(200), info_s(200);
    const FactorResult ri = factor_batch_cpu<float>(layout, a.span(), oi,
                                                    info_i);
    const FactorResult rs = factor_batch_cpu<float>(layout, b.span(), os,
                                                    info_s);
    EXPECT_EQ(ri.failed_count, 2);
    EXPECT_EQ(rs.failed_count, 2);
    EXPECT_EQ(info_i, info_s);
  }
}

TEST(BatchFactor, DeterministicAcrossThreadCounts) {
  const auto layout = BatchLayout::interleaved_chunked(8, 128, 32);
  AlignedBuffer<float> a(layout.size_elems()), b(layout.size_elems());
  generate_spd_batch<float>(layout, a.span());
  std::copy(a.begin(), a.end(), b.begin());
  CpuFactorOptions o1;
  o1.num_threads = 1;
  CpuFactorOptions o2;
  o2.num_threads = 2;
  factor_batch_cpu<float>(layout, a.span(), o1);
  factor_batch_cpu<float>(layout, b.span(), o2);
  EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
}

// ------------------------------------------------------------- solve -----

class BatchSolveTest : public ::testing::TestWithParam<LayoutKind> {};

TEST_P(BatchSolveTest, SolutionsSatisfySystems) {
  const int n = 12;
  const std::int64_t batch = 100;
  BatchLayout layout = BatchLayout::canonical(n, batch);
  if (GetParam() == LayoutKind::kInterleaved) {
    layout = BatchLayout::interleaved(n, batch);
  } else if (GetParam() == LayoutKind::kInterleavedChunked) {
    layout = BatchLayout::interleaved_chunked(n, batch, 32);
  }
  AlignedBuffer<float> data(layout.size_elems());
  generate_spd_batch<float>(layout, data.span());
  std::vector<float> orig(data.begin(), data.end());

  ASSERT_TRUE(factor_batch_cpu<float>(layout, data.span(), {}).ok());

  const auto vlayout = BatchVectorLayout::matching(layout);
  AlignedBuffer<float> rhs(vlayout.size_elems());
  for (std::int64_t b = 0; b < batch; ++b) {
    for (int i = 0; i < n; ++i) {
      rhs[vlayout.index(b, i)] = static_cast<float>(1 + (b + i) % 5);
    }
  }
  solve_batch_cpu<float>(layout, std::span<const float>(data.span()), vlayout,
                         rhs.span());

  std::vector<float> a(n * n), x(n), bvec(n);
  for (const std::int64_t b : {std::int64_t{0}, batch / 2, batch - 1}) {
    extract_matrix<float>(layout, std::span<const float>(orig), b, a);
    for (int i = 0; i < n; ++i) {
      x[i] = rhs[vlayout.index(b, i)];
      bvec[i] = static_cast<float>(1 + (b + i) % 5);
    }
    EXPECT_LT(residual_error<float>(n, a, x, bvec), 1e-4) << "b=" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Layouts, BatchSolveTest,
                         ::testing::Values(LayoutKind::kCanonical,
                                           LayoutKind::kInterleaved,
                                           LayoutKind::kInterleavedChunked));

TEST(BatchSolve, RejectsMismatchedVectorLayout) {
  const auto m = BatchLayout::interleaved_chunked(4, 64, 32);
  const auto v = BatchVectorLayout::interleaved(4, 64);  // wrong kind
  AlignedBuffer<float> mats(m.size_elems());
  AlignedBuffer<float> rhs(v.size_elems());
  EXPECT_THROW(solve_batch_cpu<float>(
                   m, std::span<const float>(mats.span()), v, rhs.span()),
               Error);
}

TEST(BatchSolve, FastMathCloseToIeee) {
  const int n = 8;
  const auto layout = BatchLayout::interleaved(n, 64);
  AlignedBuffer<float> data(layout.size_elems());
  generate_spd_batch<float>(layout, data.span());
  ASSERT_TRUE(factor_batch_cpu<float>(layout, data.span(), {}).ok());

  const auto vlayout = BatchVectorLayout::matching(layout);
  AlignedBuffer<float> r1(vlayout.size_elems()), r2(vlayout.size_elems());
  for (std::size_t i = 0; i < r1.size(); ++i) r1[i] = r2[i] = 1.0f;
  solve_batch_cpu<float>(layout, std::span<const float>(data.span()), vlayout,
                         r1.span(), MathMode::kIeee);
  solve_batch_cpu<float>(layout, std::span<const float>(data.span()), vlayout,
                         r2.span(), MathMode::kFastMath);
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_NEAR(r1[i], r2[i], 1e-3f * std::max(1.0f, std::abs(r1[i])));
  }
}

}  // namespace
}  // namespace ibchol
