// Tests for the guided autotuning search.
#include <gtest/gtest.h>

#include "autotune/search.hpp"
#include "autotune/sweep.hpp"

namespace ibchol {
namespace {

class SearchTest : public ::testing::Test {
 protected:
  ModelEvaluator eval_{KernelModel(GpuSpec::p100())};
  static constexpr std::int64_t kBatch = 16384;
};

TEST_F(SearchTest, FindsNearOptimalWithFarFewerEvaluations) {
  for (const int n : {8, 24, 48}) {
    // Exhaustive optimum for reference.
    SweepOptions sopt;
    sopt.sizes = {n};
    sopt.batch = kBatch;
    const SweepDataset ds = run_sweep(eval_, sopt);
    const double exhaustive = ds.best(n)->gflops;
    const std::size_t space_size = ds.size();

    const SearchResult res = guided_search(eval_, n, kBatch, {});
    EXPECT_GT(res.best_gflops, 0.93 * exhaustive)
        << "n=" << n << ": guided search must land within 7% of the optimum";
    EXPECT_LT(res.evaluations, static_cast<int>(space_size) / 2)
        << "n=" << n << ": guided search must use far fewer evaluations";
  }
}

TEST_F(SearchTest, DeterministicInSeed) {
  const SearchResult a = guided_search(eval_, 24, kBatch, {});
  const SearchResult b = guided_search(eval_, 24, kBatch, {});
  EXPECT_EQ(a.best, b.best);
  EXPECT_EQ(a.evaluations, b.evaluations);
  SearchOptions other;
  other.seed = 12345;
  const SearchResult c = guided_search(eval_, 24, kBatch, other);
  // A different seed explores a different path (result may coincide, the
  // trace rarely does).
  EXPECT_GT(c.best_gflops, 0.0);
}

TEST_F(SearchTest, RespectsSpaceRestrictions) {
  SearchOptions opt;
  opt.space.include_non_chunked = false;
  opt.space.chunk_sizes = {128};
  opt.space.tile_sizes = {2, 4};
  const SearchResult res = guided_search(eval_, 32, kBatch, opt);
  EXPECT_TRUE(res.best.chunked);
  EXPECT_EQ(res.best.chunk_size, 128);
  EXPECT_TRUE(res.best.nb == 2 || res.best.nb == 4);
}

TEST_F(SearchTest, MoreRestartsNeverWorse) {
  SearchOptions one;
  one.restarts = 1;
  SearchOptions five;
  five.restarts = 5;
  const double g1 = guided_search(eval_, 32, kBatch, one).best_gflops;
  const double g5 = guided_search(eval_, 32, kBatch, five).best_gflops;
  EXPECT_GE(g5, g1);
}

TEST_F(SearchTest, WinnerIsValidConfiguration) {
  const SearchResult res = guided_search(eval_, 17, kBatch, {});
  res.best.validate(17);  // must not throw
  EXPECT_LE(res.best.nb, 8);
}

TEST_F(SearchTest, RejectsBadShape) {
  EXPECT_THROW((void)guided_search(eval_, 0, kBatch, {}), Error);
  EXPECT_THROW((void)guided_search(eval_, 8, 0, {}), Error);
}

}  // namespace
}  // namespace ibchol
