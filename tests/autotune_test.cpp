// Tests for the autotuner: space enumeration, sweeps, records, analysis.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "autotune/analyze.hpp"
#include "autotune/evaluator.hpp"
#include "autotune/journal.hpp"
#include "autotune/space.hpp"
#include "autotune/sweep.hpp"

namespace ibchol {
namespace {

// --------------------------------------------------------------- space ---

TEST(Space, SizeMatchesGridArithmetic) {
  // nb(8) x looking(3) x unroll(2) x layouts(5 chunked + 1 simple) = 288.
  const auto space = enumerate_space(64, {});
  EXPECT_EQ(space.size(), 288u);
}

TEST(Space, FastMathDoublesSpace) {
  SpaceOptions opt;
  opt.include_fast_math = true;
  EXPECT_EQ(enumerate_space(64, opt).size(), 576u);
}

TEST(Space, CachePrefDoublesSpace) {
  SpaceOptions opt;
  opt.include_cache_pref = true;
  EXPECT_EQ(enumerate_space(64, opt).size(), 576u);
}

TEST(Space, TileSizesClampedToN) {
  // n=3 keeps nb in {1,2,3}: 3 x 3 x 2 x 6 = 108.
  EXPECT_EQ(enumerate_space(3, {}).size(), 108u);
}

TEST(Space, AllPointsValidAndDistinct) {
  std::set<std::string> keys;
  for (const auto& p : enumerate_space(24, {})) {
    p.validate(24);
    EXPECT_TRUE(keys.insert(p.key()).second) << p.key();
  }
}

TEST(Space, ExecutorAxisMultipliesSpace) {
  // Three executors, two vectorized tiers: the 288-point grid gains a
  // factor of (1 + 1 + 2) = 4.
  SpaceOptions opt;
  opt.execs = {CpuExec::kInterpreter, CpuExec::kSpecialized,
               CpuExec::kVectorized};
  opt.isas = {SimdIsa::kScalar, SimdIsa::kAvx2};
  const auto space = enumerate_space(64, opt);
  EXPECT_EQ(space.size(), 288u * 4);
  std::set<std::string> keys;
  for (const auto& p : space) {
    p.validate(64);
    EXPECT_TRUE(keys.insert(p.key()).second) << p.key();
  }
}

TEST(Space, DefaultExecAxisMatchesHistoricalGrid) {
  // Leaving execs empty keeps the historical specialized-only grid so old
  // sweep datasets remain comparable point for point.
  for (const auto& p : enumerate_space(16, {})) {
    EXPECT_EQ(p.exec, CpuExec::kSpecialized);
    EXPECT_EQ(p.isa, SimdIsa::kAuto);
  }
}

TEST(Space, PackChunkSizesSweepTheNonChunkedKnob) {
  // chunk_size is a live axis for the non-chunked layout too (the CPU
  // pipeline's pack-scratch lane count): each requested size replaces the
  // historical single chunk_size=0 point.
  SpaceOptions opt;
  opt.pack_chunk_sizes = {64, 128, 256};
  const auto space = enumerate_space(64, opt);
  // 48 base combos x (5 chunked + 3 non-chunked layout points).
  EXPECT_EQ(space.size(), 48u * 8);
  std::set<std::string> keys;
  std::set<int> seen;
  for (const auto& p : space) {
    p.validate(64);
    EXPECT_TRUE(keys.insert(p.key()).second) << p.key();
    if (!p.chunked) seen.insert(p.chunk_size);
  }
  EXPECT_EQ(seen, (std::set<int>{64, 128, 256}));
}

TEST(Space, SizesLists) {
  EXPECT_EQ(standard_sizes().front(), 2);
  EXPECT_EQ(standard_sizes().back(), 64);
  EXPECT_FALSE(quick_sizes().empty());
  // Every tiled-lane size sits past the small-n executors' ceiling.
  for (const int n : tiled_sizes()) EXPECT_GT(n, 64);
}

TEST(Space, TiledLaneOffByDefaultAndGated) {
  // With the lane off the enumeration is byte-identical to the historical
  // grid: no exec=kAuto points, no non-default lookahead.
  for (const auto& p : enumerate_space(256, {})) {
    EXPECT_NE(p.exec, CpuExec::kAuto);
    EXPECT_EQ(p.lookahead, 2);
  }
  SpaceOptions opt;
  opt.include_tiled = true;
  const auto base = enumerate_space(256, {});
  const auto space = enumerate_space(256, opt);
  ASSERT_GT(space.size(), base.size());
  // The lane appends after the classic grid, leaving its prefix intact.
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(space[i].key(), base[i].key()) << i;
  }
  std::set<std::string> keys;
  std::set<int> lookaheads;
  for (const auto& p : space) {
    p.validate(256);
    EXPECT_TRUE(keys.insert(p.key()).second) << p.key();
    if (p.exec == CpuExec::kAuto) {
      EXPECT_GE(p.nb, 16);  // the cache-fit ladder, not the small-n sizes
      lookaheads.insert(p.lookahead);
    }
  }
  EXPECT_EQ(lookaheads, (std::set<int>{1, 2, 4}));
  // At and below the ceiling the lane contributes nothing.
  EXPECT_EQ(enumerate_space(64, opt).size(), enumerate_space(64, {}).size());
}

// --------------------------------------------------------------- sweep ---

class SweepTest : public ::testing::Test {
 protected:
  static SweepOptions small_options() {
    SweepOptions opt;
    opt.sizes = {8, 24};
    opt.batch = 16384;
    opt.space.tile_sizes = {1, 4, 8};
    opt.space.chunk_sizes = {32, 256};
    return opt;
  }
};

TEST_F(SweepTest, ProducesOneRecordPerPoint) {
  ModelEvaluator eval(KernelModel(GpuSpec::p100()));
  const SweepOptions opt = small_options();
  std::size_t expected = 0;
  for (const int n : opt.sizes) {
    expected += enumerate_space(n, opt.space).size();
  }
  const SweepDataset ds = run_sweep(eval, opt);
  EXPECT_EQ(ds.size(), expected);
  for (const auto& r : ds.records()) {
    EXPECT_GT(r.gflops, 0.0);
    EXPECT_GT(r.seconds, 0.0);
  }
}

TEST_F(SweepTest, ProgressCallbackCovered) {
  ModelEvaluator eval(KernelModel(GpuSpec::p100()));
  SweepOptions opt = small_options();
  std::size_t last = 0, total = 0;
  opt.progress = [&](std::size_t done, std::size_t t) {
    last = done;
    total = t;
  };
  const SweepDataset ds = run_sweep(eval, opt);
  EXPECT_EQ(last, ds.size());
  EXPECT_EQ(total, ds.size());
}

TEST_F(SweepTest, ParallelMatchesSerialRecordForRecord) {
  // The parallel driver must return records in the same order, with the
  // same values, as the serial driver (jitter included — it is keyed on
  // the point, not on evaluation order).
  ModelEvaluator serial_eval(KernelModel(GpuSpec::p100()), 0.05);
  ModelEvaluator parallel_eval(KernelModel(GpuSpec::p100()), 0.05);
  SweepOptions opt = small_options();
  opt.num_threads = 1;
  const SweepDataset serial = run_sweep(serial_eval, opt);
  opt.num_threads = 4;
  const SweepDataset parallel = run_sweep(parallel_eval, opt);

  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const SweepRecord& a = serial.records()[i];
    const SweepRecord& b = parallel.records()[i];
    EXPECT_EQ(a.n, b.n) << "record " << i;
    EXPECT_EQ(a.params, b.params) << "record " << i;
    EXPECT_EQ(a.seconds, b.seconds) << "record " << i;
    EXPECT_EQ(a.gflops, b.gflops) << "record " << i;
  }
}

TEST_F(SweepTest, ParallelProgressIsSerializedAndMonotone) {
  // The progress contract (sweep.hpp): invocations are serialized, and the
  // done counts form exactly 1..total even when workers finish out of
  // order. A violated mutex would show up as a gap or repeat here.
  ModelEvaluator eval(KernelModel(GpuSpec::p100()));
  SweepOptions opt = small_options();
  opt.num_threads = 4;
  std::vector<std::size_t> dones;
  std::vector<std::size_t> totals;
  opt.progress = [&](std::size_t done, std::size_t total) {
    dones.push_back(done);
    totals.push_back(total);
  };
  const SweepDataset ds = run_sweep(eval, opt);
  ASSERT_EQ(dones.size(), ds.size());
  for (const std::size_t t : totals) EXPECT_EQ(t, ds.size());
  for (std::size_t i = 0; i < dones.size(); ++i) {
    EXPECT_EQ(dones[i], i + 1);
  }
}

TEST_F(SweepTest, MeasuredEvaluatorStaysSerial) {
  // Wall-clock evaluators must own the machine; parallel_safe() gates the
  // OpenMP driver off no matter what num_threads asks for.
  CpuMeasuredEvaluator::Options mopt;
  CpuMeasuredEvaluator eval(mopt);
  EXPECT_FALSE(eval.parallel_safe());
  ModelEvaluator model(KernelModel(GpuSpec::p100()));
  EXPECT_TRUE(model.parallel_safe());
}

TEST(Evaluators, ModelMemoizesRepeatedPoints) {
  ModelEvaluator eval(KernelModel(GpuSpec::p100()), 0.05);
  TuningParams p;
  const double first = eval.seconds(16, 1024, p);
  EXPECT_EQ(eval.cache_size(), 1u);
  EXPECT_EQ(eval.cache_hits(), 0u);
  EXPECT_EQ(eval.seconds(16, 1024, p), first);
  EXPECT_EQ(eval.cache_hits(), 1u);
  // Distinct points (different n, batch, or params) get distinct slots.
  (void)eval.seconds(24, 1024, p);
  (void)eval.seconds(16, 2048, p);
  p.nb = 2;
  (void)eval.seconds(16, 1024, p);
  EXPECT_EQ(eval.cache_size(), 4u);
}

TEST_F(SweepTest, WinnersAreChunked) {
  // The model must never pick a non-chunked winner (paper conclusion).
  ModelEvaluator eval(KernelModel(GpuSpec::p100()));
  const SweepDataset ds = run_sweep(eval, small_options());
  for (const auto& [n, params] : select_winners(ds)) {
    EXPECT_TRUE(params.chunked) << "n=" << n;
  }
}

TEST_F(SweepTest, BestReducersConsistent) {
  ModelEvaluator eval(KernelModel(GpuSpec::p100()));
  const SweepDataset ds = run_sweep(eval, small_options());
  const auto best8 = ds.best(8);
  ASSERT_TRUE(best8.has_value());
  for (const auto& r : ds.records()) {
    if (r.n == 8) EXPECT_LE(r.gflops, best8->gflops);
  }
  const auto by_n = ds.best_by_n();
  EXPECT_EQ(by_n.at(8).gflops, best8->gflops);
  // Filtered best: nb == 1 only.
  const auto nb1 = ds.best(24, [](const SweepRecord& r) {
    return r.params.nb == 1;
  });
  ASSERT_TRUE(nb1.has_value());
  EXPECT_EQ(nb1->params.nb, 1);
  EXPECT_FALSE(ds.best(99).has_value());
}

TEST_F(SweepTest, CsvRoundTrip) {
  ModelEvaluator eval(KernelModel(GpuSpec::p100()));
  const SweepDataset ds = run_sweep(eval, small_options());
  const SweepDataset back = SweepDataset::from_csv(ds.to_csv());
  ASSERT_EQ(back.size(), ds.size());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(back.records()[i].n, ds.records()[i].n);
    EXPECT_EQ(back.records()[i].params, ds.records()[i].params);
    EXPECT_NEAR(back.records()[i].gflops, ds.records()[i].gflops, 1e-4);
  }
}

TEST_F(SweepTest, ChunkSizeKnobRoundTripsCsvAndJournal) {
  // A non-chunked record carrying a live pack chunk size (and the kAuto
  // executor) must survive both persistence formats bit-for-bit, so sweep
  // archives written with the CPU pipeline's new axes re-load comparably.
  SweepRecord r;
  r.n = 32;
  r.batch = 4096;
  r.params.chunked = false;
  r.params.chunk_size = 128;
  r.params.exec = CpuExec::kAuto;
  r.params.unroll = Unroll::kFull;
  r.seconds = 1.25e-3;
  r.gflops = 35.125;
  const auto parsed = parse_journal_line(journal_line(r));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->params, r.params);
  EXPECT_EQ(parsed->params.chunk_size, 128);
  EXPECT_EQ(parsed->params.exec, CpuExec::kAuto);
  EXPECT_EQ(parsed->seconds, r.seconds);

  SweepDataset ds;
  ds.add(r);
  const SweepDataset back = SweepDataset::from_csv(ds.to_csv());
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back.records()[0].params, r.params);
  EXPECT_FALSE(back.records()[0].params.chunked);
  EXPECT_EQ(back.records()[0].params.chunk_size, 128);
}

TEST_F(SweepTest, LookaheadRoundTripsCsvAndJournal) {
  // A tiled-lane record (kAuto executor, non-default panel lookahead) must
  // survive both persistence formats so large-n sweeps resume and re-load
  // exactly; archives written before the column keep the default.
  SweepRecord r;
  r.n = 256;
  r.batch = 32;
  r.params.nb = 64;
  r.params.exec = CpuExec::kAuto;
  r.params.chunked = false;
  r.params.chunk_size = 0;
  r.params.lookahead = 4;
  r.seconds = 2.5e-2;
  r.gflops = 17.5;
  const auto parsed = parse_journal_line(journal_line(r));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->params, r.params);
  EXPECT_EQ(parsed->params.lookahead, 4);

  SweepDataset ds;
  ds.add(r);
  const SweepDataset back = SweepDataset::from_csv(ds.to_csv());
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back.records()[0].params, r.params);
  EXPECT_EQ(back.records()[0].params.lookahead, 4);

  // Pre-lane journal lines carry no "lookahead" field: parse defaults it.
  std::string old_line = journal_line(r);
  const std::size_t at = old_line.find(",\"lookahead\":4");
  ASSERT_NE(at, std::string::npos);
  old_line.erase(at, std::string(",\"lookahead\":4").size());
  const auto old_back = parse_journal_line(old_line);
  ASSERT_TRUE(old_back.has_value());
  EXPECT_EQ(old_back->params.lookahead, 2);

  // Likewise a pre-lane CSV without the column.
  CsvTable t = ds.to_csv();
  const auto col = std::find(t.header.begin(), t.header.end(),
                             std::string("lookahead"));
  ASSERT_NE(col, t.header.end());
  const std::size_t ci = static_cast<std::size_t>(col - t.header.begin());
  t.header.erase(t.header.begin() + static_cast<std::ptrdiff_t>(ci));
  for (auto& row : t.rows) {
    row.erase(row.begin() + static_cast<std::ptrdiff_t>(ci));
  }
  const SweepDataset old_ds = SweepDataset::from_csv(t);
  ASSERT_EQ(old_ds.size(), 1u);
  EXPECT_EQ(old_ds.records()[0].params.lookahead, 2);
}

TEST_F(SweepTest, RejectsEmptyConfiguration) {
  ModelEvaluator eval(KernelModel(GpuSpec::p100()));
  SweepOptions opt;
  EXPECT_THROW((void)run_sweep(eval, opt), Error);
}

// ----------------------------------------------------------- evaluators --

TEST(Evaluators, ModelNoiseIsDeterministic) {
  ModelEvaluator a(KernelModel(GpuSpec::p100()), 0.05);
  ModelEvaluator b(KernelModel(GpuSpec::p100()), 0.05);
  TuningParams p;
  EXPECT_EQ(a.seconds(16, 1024, p), b.seconds(16, 1024, p));
  // Noise perturbs relative to the clean model.
  ModelEvaluator clean(KernelModel(GpuSpec::p100()), 0.0);
  EXPECT_NE(a.seconds(16, 1024, p), clean.seconds(16, 1024, p));
}

TEST(Evaluators, GflopsUsesNominalFormula) {
  ModelEvaluator eval(KernelModel(GpuSpec::p100()));
  TuningParams p;
  const double s = eval.seconds(12, 4096, p);
  const double g = eval.gflops(12, 4096, p);
  EXPECT_NEAR(g, 4096.0 * 12 * 12 * 12 / 3.0 / s / 1e9, 1e-9);
}

TEST(Evaluators, CpuMeasuredProducesPositiveTimes) {
  CpuMeasuredEvaluator::Options opt;
  opt.warmup = 0;
  opt.reps = 1;
  CpuMeasuredEvaluator eval(opt);
  TuningParams p;
  const double s = eval.seconds(8, 512, p);
  EXPECT_GT(s, 0.0);
  // Cached pristine data: second call still works and is positive.
  EXPECT_GT(eval.seconds(8, 512, p), 0.0);
}

// ------------------------------------------------------------- analyze ---

TEST(Analyze, TableAndCorrelation) {
  ModelEvaluator eval(KernelModel(GpuSpec::p100()), 0.02);
  SweepOptions opt;
  opt.sizes = {8, 16, 32, 48};
  opt.space.tile_sizes = {1, 2, 4, 8};
  opt.space.chunk_sizes = {32, 128, 512};
  opt.space.include_cache_pref = true;
  const SweepDataset ds = run_sweep(eval, opt);

  ForestOptions fopt;
  fopt.num_trees = 120;
  // The feature set now carries "isa", constant in this executor-less
  // sweep; widen the per-node candidate draw so a dead draw cannot crowd
  // out the live parameters (default mtry stays at p/3 = 2).
  fopt.tree.mtry = 3;
  const AnalysisResult res = analyze_dataset(ds, fopt);

  ASSERT_EQ(res.table.size(), 10u);
  EXPECT_EQ(res.table[0].parameter, "n");
  EXPECT_EQ(res.num_trees, 120);
  EXPECT_GT(res.average_depth, 2.0);
  EXPECT_GT(res.correlation, 0.9);  // Fig 21: tight predicted-vs-observed
  EXPECT_EQ(res.observed.size(), res.predicted.size());
  EXPECT_GT(res.observed.size(), ds.size() / 2);

  // The cache carveout does nothing in these kernels: its predictive power
  // must be the weakest of all parameters (Table I's bottom row).
  double cache_imp = 0.0, max_imp = 0.0;
  for (const auto& row : res.table) {
    if (row.parameter == "cache") cache_imp = row.inc_mse;
    max_imp = std::max(max_imp, row.inc_mse);
  }
  EXPECT_LT(cache_imp, 0.05 * max_imp);

  // The chunked-layout axis must rank among the strongest tuning
  // parameters (Table I). Its importance splits across the yes/no flag and
  // the chunk-size knob — correlated features share permutation importance
  // — so the claim is asserted on their sum, and the flag alone must still
  // beat clearly-dead axes like the evaluation order.
  double chunking_imp = 0.0, chunk_size_imp = 0.0, looking_imp = 0.0;
  for (const auto& row : res.table) {
    if (row.parameter == "chunking") chunking_imp = row.inc_mse;
    if (row.parameter == "chunk_size") chunk_size_imp = row.inc_mse;
    if (row.parameter == "looking") looking_imp = row.inc_mse;
  }
  EXPECT_GT(chunking_imp + chunk_size_imp, 0.15 * max_imp);
  EXPECT_GT(chunking_imp, looking_imp);

  // The executor tier is constant in this sweep (no --exec axis), so its
  // permutation importance must be exactly zero.
  for (const auto& row : res.table) {
    if (row.parameter == "isa") EXPECT_EQ(row.inc_mse, 0.0);
  }
}

TEST(Analyze, RejectsEmptyDataset) {
  const SweepDataset empty;
  EXPECT_THROW((void)analyze_dataset(empty), Error);
}

TEST(Analyze, FeatureMatrixShape) {
  ModelEvaluator eval(KernelModel(GpuSpec::p100()));
  SweepOptions opt;
  opt.sizes = {8};
  opt.space.tile_sizes = {1};
  opt.space.chunk_sizes = {32};
  const SweepDataset ds = run_sweep(eval, opt);
  const AnalysisData data = build_analysis_data(ds);
  EXPECT_EQ(data.features.rows(), ds.size());
  EXPECT_EQ(data.features.cols(), 10u);
  EXPECT_EQ(data.target.size(), ds.size());
}

// The feature count is pinned in exactly one place (the schema): the
// names, the Table I metadata, and the per-record encoder must all agree
// on it, so a new axis can never widen one and not the others.
TEST(Analyze, FeatureCountPinnedBySchema) {
  const auto& schema = analysis_feature_schema();
  EXPECT_EQ(analysis_feature_names().size(), schema.size());
  EXPECT_EQ(analysis_features_for(8, TuningParams{}).size(), schema.size());
  for (std::size_t f = 0; f < schema.size(); ++f) {
    EXPECT_EQ(analysis_feature_names()[f], schema[f].name);
  }
}

// Differential: a pre-lookahead (9-feature era) CSV and a current
// 10-column CSV must both parse, both build full-width feature matrices,
// and — when lookahead sat at its default throughout — train forests that
// predict identically, because the missing column back-fills the default.
TEST(Analyze, OldNineFeatureCsvParsesAndPredictsLikeNew) {
  ModelEvaluator eval(KernelModel(GpuSpec::p100()), 0.02);
  SweepOptions opt;
  opt.sizes = {8, 16};
  opt.space.tile_sizes = {1, 2, 4, 8};
  opt.space.chunk_sizes = {32, 128};
  const SweepDataset ds = run_sweep(eval, opt);

  // The current serialization, and the same table with the "lookahead"
  // column dropped — what a PR-8-era sweep run wrote to disk.
  const CsvTable csv_new = ds.to_csv();
  const std::size_t la = csv_new.column("lookahead");
  CsvTable csv_old = csv_new;
  csv_old.header.erase(csv_old.header.begin() + static_cast<long>(la));
  const std::string la_default = std::to_string(TuningParams{}.lookahead);
  for (auto& row : csv_old.rows) {
    // A small-n sweep never moves lookahead off its default, so dropping
    // the column loses no information — exactly the 9-feature era.
    ASSERT_EQ(row[la], la_default);
    row.erase(row.begin() + static_cast<long>(la));
  }

  const SweepDataset ds_new = SweepDataset::from_csv(csv_new);
  const SweepDataset ds_old = SweepDataset::from_csv(csv_old);
  ASSERT_EQ(ds_new.size(), ds.size());
  ASSERT_EQ(ds_old.size(), ds.size());

  // Both eras encode to the full schema width.
  const AnalysisData d_new = build_analysis_data(ds_new);
  const AnalysisData d_old = build_analysis_data(ds_old);
  const std::size_t width = analysis_feature_schema().size();
  EXPECT_EQ(d_new.features.cols(), width);
  EXPECT_EQ(d_old.features.cols(), width);
  EXPECT_EQ(d_new.features.cols(), analysis_feature_names().size());

  // Row-for-row identical matrices: the dropped column back-filled its
  // default, which is exactly what the records held.
  ASSERT_EQ(d_new.features.rows(), d_old.features.rows());
  for (std::size_t i = 0; i < d_new.features.rows(); ++i) {
    for (std::size_t f = 0; f < width; ++f) {
      ASSERT_EQ(d_new.features.at(i, f), d_old.features.at(i, f))
          << "row " << i << " feature " << analysis_feature_names()[f];
    }
  }

  // Forests fit on either era predict finite, identical values (same
  // data, same seeded training).
  ForestOptions fopt;
  fopt.num_trees = 40;
  RandomForest f_new, f_old;
  f_new.fit(d_new.features, d_new.target, fopt);
  f_old.fit(d_old.features, d_old.target, fopt);
  const std::vector<double> probe =
      analysis_features_for(16, ds.records().front().params);
  const double p_new = f_new.predict(probe);
  const double p_old = f_old.predict(probe);
  EXPECT_TRUE(std::isfinite(p_new));
  EXPECT_DOUBLE_EQ(p_new, p_old);
}

}  // namespace
}  // namespace ibchol
