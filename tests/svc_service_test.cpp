// Tests for BatchService: bit-identity with the synchronous drivers across
// layouts and dtypes, concurrent submission, cancellation, drain-on-
// teardown, the zero-steady-state-allocation property, recovery routing,
// and the IBCHOL_SERVICE facade switch.
//
// Pipeline units are schedule-agnostic (each unit factors a disjoint lane
// range through the same kernels in the same order), so the service must
// reproduce the OpenMP path bit for bit — every comparison here is
// memcmp-exact, not tolerance-based.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <limits>
#include <thread>
#include <vector>

#include "core/batch_cholesky.hpp"
#include "cpu/batch_factor.hpp"
#include "cpu/recover.hpp"
#include "layout/generate.hpp"
#include "layout/layout.hpp"
#include "svc/batch_service.hpp"
#include "util/aligned_buffer.hpp"

namespace ibchol::svc {
namespace {

template <typename T>
struct Workload {
  BatchLayout layout;
  AlignedBuffer<T> data;
  std::vector<std::int32_t> info;

  explicit Workload(const BatchLayout& l, std::uint64_t seed = 42)
      : layout(l),
        data(l.size_elems()),
        info(static_cast<std::size_t>(l.batch()), -7) {
    generate_spd_batch<T>(layout, data.span(),
                          {SpdKind::kGramPlusDiagonal, seed, 50.0});
  }

  Workload clone() const {
    Workload copy(layout, Uninit{});
    std::memcpy(copy.data.span().data(), data.span().data(),
                data.span().size() * sizeof(T));
    copy.info = info;
    return copy;
  }

 private:
  struct Uninit {};
  Workload(const BatchLayout& l, Uninit)
      : layout(l), data(l.size_elems()),
        info(static_cast<std::size_t>(l.batch()), -7) {}
};

template <typename T>
void expect_identical(const Workload<T>& a, const Workload<T>& b) {
  ASSERT_EQ(a.data.span().size(), b.data.span().size());
  EXPECT_EQ(std::memcmp(a.data.span().data(), b.data.span().data(),
                        a.data.span().size() * sizeof(T)),
            0);
  EXPECT_EQ(a.info, b.info);
}

template <typename T>
void check_bit_identity(const BatchLayout& layout,
                        const CpuFactorOptions& options) {
  Workload<T> reference(layout);
  Workload<T> serviced = reference.clone();
  // A couple of failing matrices exercise info/FactorResult merging.
  poison_matrix<T>(reference.layout, reference.data.span(), 3, 2);
  poison_matrix<T>(serviced.layout, serviced.data.span(), 3, 2);
  const std::int64_t last = layout.batch() - 1;
  poison_matrix<T>(reference.layout, reference.data.span(), last, 1);
  poison_matrix<T>(serviced.layout, serviced.data.span(), last, 1);

  const FactorResult want = factor_batch_cpu<T>(
      reference.layout, reference.data.span(), options, reference.info);

  BatchService service({.num_threads = 4, .steal_grain = 1});
  const FactorResult got = service.factor<T>(
      serviced.layout, serviced.data.span(), options, serviced.info);

  EXPECT_EQ(got.failed_count, want.failed_count);
  EXPECT_EQ(got.first_failed, want.first_failed);
  expect_identical(reference, serviced);
}

TEST(BatchService, BitIdenticalInterleavedFloat) {
  check_bit_identity<float>(BatchLayout::interleaved(16, 300), {});
}

TEST(BatchService, BitIdenticalInterleavedDouble) {
  check_bit_identity<double>(BatchLayout::interleaved(24, 300), {});
}

TEST(BatchService, BitIdenticalChunkedFloat) {
  check_bit_identity<float>(BatchLayout::interleaved_chunked(16, 300, 64),
                            {});
}

TEST(BatchService, BitIdenticalChunkedDouble) {
  CpuFactorOptions options;
  options.nb = 6;
  options.looking = Looking::kLeft;
  check_bit_identity<double>(BatchLayout::interleaved_chunked(20, 500, 64),
                             options);
}

TEST(BatchService, BitIdenticalCanonical) {
  check_bit_identity<double>(BatchLayout::canonical(16, 150), {});
  check_bit_identity<float>(BatchLayout::canonical(8, 40), {});
}

TEST(BatchService, BitIdenticalCanonicalUpper) {
  CpuFactorOptions options;
  options.triangle = Triangle::kUpper;
  check_bit_identity<double>(BatchLayout::canonical(12, 100), options);
}

TEST(BatchService, BitIdenticalFullUnroll) {
  CpuFactorOptions options;
  options.unroll = Unroll::kFull;
  check_bit_identity<float>(BatchLayout::interleaved(8, 200), options);
}

TEST(BatchService, SingleWorkerMatchesToo) {
  const BatchLayout layout = BatchLayout::interleaved(16, 200);
  Workload<float> reference(layout);
  Workload<float> serviced = reference.clone();
  const FactorResult want = factor_batch_cpu<float>(
      layout, reference.data.span(), {}, reference.info);
  BatchService service({.num_threads = 1});
  const FactorResult got =
      service.factor<float>(layout, serviced.data.span(), {}, serviced.info);
  EXPECT_EQ(got.failed_count, want.failed_count);
  expect_identical(reference, serviced);
}

// Many client threads hammer one service; every request's result must
// match its own synchronous reference.
TEST(BatchService, ConcurrentSubmissionStress) {
  constexpr int kClients = 4;
  constexpr int kPerClient = 6;
  BatchService service({.num_threads = 3, .max_inflight = 8});

  const BatchLayout layouts[] = {
      BatchLayout::interleaved(8, 200),
      BatchLayout::interleaved_chunked(16, 300, 64),
      BatchLayout::canonical(12, 64),
  };

  std::vector<std::thread> clients;
  std::vector<std::string> failures(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const BatchLayout& layout = layouts[(c + i) % 3];
        const std::uint64_t seed = 100 + static_cast<std::uint64_t>(c) * 31 +
                                   static_cast<std::uint64_t>(i);
        Workload<float> reference(layout, seed);
        Workload<float> serviced = reference.clone();
        const FactorResult want = factor_batch_cpu<float>(
            layout, reference.data.span(), {}, reference.info);
        const FactorResult got = service.factor<float>(
            layout, serviced.data.span(), {}, serviced.info);
        if (got.failed_count != want.failed_count ||
            serviced.info != reference.info ||
            std::memcmp(serviced.data.span().data(),
                        reference.data.span().data(),
                        reference.data.span().size() * sizeof(float)) != 0) {
          failures[c] = "mismatch at client " + std::to_string(c) +
                        " request " + std::to_string(i);
          return;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  for (const auto& f : failures) EXPECT_EQ(f, "");
}

// Pipelined submission: several requests in flight on one service at once
// through the async API, each verified afterwards. Note max_inflight must
// cover futures being *held*: a slot recycles only once its request
// completed and its future was released.
TEST(BatchService, AsyncSubmitManyThenWait) {
  constexpr int kRequests = 10;
  BatchService service({.num_threads = 2, .max_inflight = 16});
  const BatchLayout layout = BatchLayout::interleaved(16, 300);

  Workload<double> reference(layout, 7);
  const FactorResult want = factor_batch_cpu<double>(
      layout, reference.data.span(), {}, reference.info);

  std::vector<Workload<double>> batches;
  batches.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    batches.push_back(Workload<double>(layout, 7).clone());
  }
  std::vector<FactorFuture> futures;
  futures.reserve(kRequests);
  for (auto& b : batches) {
    futures.push_back(
        service.submit<double>(layout, b.data.span(), {}, b.info));
  }
  for (int i = 0; i < kRequests; ++i) {
    const FactorResult got = futures[static_cast<std::size_t>(i)].wait();
    EXPECT_EQ(got.failed_count, want.failed_count);
    expect_identical(reference, batches[static_cast<std::size_t>(i)]);
  }
}

TEST(BatchService, CancelQueuedRequestLeavesDataUntouched) {
  // One worker, kept busy by a big request, so the second stays queued.
  BatchService service({.num_threads = 1});
  const BatchLayout big = BatchLayout::interleaved(32, 64 * 200);
  const BatchLayout small = BatchLayout::interleaved(8, 64);
  Workload<float> big_w(big);
  Workload<float> small_w(small);
  std::vector<float> small_before(small_w.data.span().begin(),
                                  small_w.data.span().end());

  FactorFuture f_big =
      service.submit<float>(big, big_w.data.span(), {}, big_w.info);
  FactorFuture f_small =
      service.submit<float>(small, small_w.data.span(), {}, small_w.info);

  if (f_small.try_cancel()) {
    EXPECT_EQ(f_small.status(), RequestStatus::kCancelled);
    const FactorResult r = f_small.wait();  // returns immediately
    EXPECT_EQ(r.failed_count, 0);
    // Data untouched.
    EXPECT_EQ(std::memcmp(small_w.data.span().data(), small_before.data(),
                          small_before.size() * sizeof(float)),
              0);
    // Cancel is not idempotent-true: the request is no longer queued.
    EXPECT_FALSE(f_small.try_cancel());
  } else {
    // The worker raced us and claimed it first: it must then complete.
    const FactorResult r = f_small.wait();
    EXPECT_EQ(r.failed_count, 0);
    EXPECT_EQ(f_small.status(), RequestStatus::kDone);
  }
  EXPECT_EQ(f_big.wait().failed_count, 0);
  // A finished request can never be cancelled.
  EXPECT_FALSE(f_big.try_cancel());
}

TEST(BatchService, TeardownDrainsInFlightRequests) {
  const BatchLayout layout = BatchLayout::interleaved(16, 300);
  Workload<float> reference(layout);
  const FactorResult want = factor_batch_cpu<float>(
      layout, reference.data.span(), {}, reference.info);

  constexpr int kRequests = 6;
  std::vector<Workload<float>> batches;
  for (int i = 0; i < kRequests; ++i) {
    batches.push_back(Workload<float>(layout).clone());
  }
  std::vector<FactorFuture> futures;
  {
    BatchService service({.num_threads = 2});
    for (auto& b : batches) {
      futures.push_back(
          service.submit<float>(layout, b.data.span(), {}, b.info));
    }
  }  // destructor: drains every accepted request, then joins the pool
  for (int i = 0; i < kRequests; ++i) {
    // Futures outlive the service and already hold the results.
    const FactorResult got = futures[static_cast<std::size_t>(i)].wait();
    EXPECT_EQ(got.failed_count, want.failed_count);
    expect_identical(reference, batches[static_cast<std::size_t>(i)]);
  }
}

TEST(BatchService, DroppedFutureStillCompletesAndRecyclesSlot) {
  const BatchLayout layout = BatchLayout::interleaved(8, 128);
  // Batches are declared before the service: dropping a future is
  // fire-and-forget, so the data must stay alive until the service (whose
  // destructor drains) is gone.
  std::vector<Workload<float>> batches;
  for (int i = 0; i < 8; ++i) {
    batches.push_back(Workload<float>(layout).clone());
  }
  BatchService service({.num_threads = 2, .max_inflight = 2});
  for (auto& b : batches) {
    // 8 requests through 2 slots: recycling must work with the future
    // dropped immediately (fire-and-forget).
    FactorFuture f = service.submit<float>(layout, b.data.span(), {}, b.info);
  }
  // Destructor drains whatever is still running.
}

// Destruction racing pending cancels: clients submit and cancel while the
// service is being torn down. The destructor must complete every accepted
// request (run or cancelled), join cleanly, and leave every future
// terminal — repeated many times to give the races room to interleave.
TEST(BatchService, SubmitCancelDestroyRaceLoop) {
  const BatchLayout layout = BatchLayout::interleaved(8, 128);
  constexpr int kIters = 25;
  constexpr int kRequests = 6;
  std::vector<Workload<float>> batches;
  for (int i = 0; i < kRequests; ++i) {
    batches.push_back(Workload<float>(layout).clone());
  }
  for (int iter = 0; iter < kIters; ++iter) {
    // Completed iterations leave factors behind; restore SPD inputs.
    for (auto& b : batches) {
      generate_spd_batch<float>(layout, b.data.span(),
                                {SpdKind::kGramPlusDiagonal, 42, 50.0});
    }
    std::vector<FactorFuture> futures;
    futures.reserve(kRequests);
    std::thread canceller;
    {
      // Slots must cover the held futures (kBlock would wait on them).
      BatchService service({.num_threads = 2, .max_inflight = kRequests});
      for (auto& b : batches) {
        futures.push_back(
            service.submit<float>(layout, b.data.span(), {}, b.info));
      }
      // Cancel half of them concurrently with teardown: the destructor
      // runs while cancels are still landing (futures share ownership of
      // the slot pool, so cancelling a dying service is legal).
      canceller = std::thread([&] {
        for (int i = 0; i < kRequests; i += 2) {
          (void)futures[static_cast<std::size_t>(i)].try_cancel();
        }
      });
    }  // ~BatchService drains: no hang, no leak, no double-complete
    canceller.join();
    for (auto& f : futures) {
      const FactorResult r = f.wait();  // must not block after teardown
      const RequestStatus st = f.status();
      EXPECT_TRUE(st == RequestStatus::kDone ||
                  st == RequestStatus::kCancelled)
          << "status " << static_cast<int>(st) << " at iter " << iter;
      if (st == RequestStatus::kDone) EXPECT_EQ(r.failed_count, 0);
    }
  }
}

TEST(BatchService, SteadyStateHeapAllocationsAreZero) {
  // One worker: the split/lease pattern is deterministic, so the warm-up
  // provably reaches the steady-state working set. An explicit chunk_size
  // on a simple interleaved layout forces the packed (double-buffered)
  // path — the heaviest arena user.
  BatchService service({.num_threads = 1});
  const BatchLayout layout = BatchLayout::interleaved(16, 500);
  CpuFactorOptions options;
  options.chunk_size = 64;
  Workload<float> w(layout);
  for (int i = 0; i < 3; ++i) {
    (void)service.factor<float>(layout, w.data.span(), options, w.info);
    generate_spd_batch<float>(layout, w.data.span(),
                              {SpdKind::kGramPlusDiagonal, 42, 50.0});
  }
  const ArenaStats warm = service.arena_stats();
  EXPECT_GT(warm.acquires, 0u);  // the workload really exercises the arena
  for (int i = 0; i < 20; ++i) {
    (void)service.factor<float>(layout, w.data.span(), options, w.info);
    generate_spd_batch<float>(layout, w.data.span(),
                              {SpdKind::kGramPlusDiagonal, 42, 50.0});
  }
  const ArenaStats steady = service.arena_stats();
  // The acceptance hook: zero scratch allocations once warm.
  EXPECT_EQ(steady.upstream_allocs, warm.upstream_allocs);
  EXPECT_GT(steady.reuses, warm.reuses);
  EXPECT_EQ(steady.live_leases, 0u);
}

// Multi-worker variant: the lease high-water mark is bounded by
// workers × (2 pack + 1 wm) regardless of how many requests run, so
// upstream allocations must go flat after a generous warm-up.
TEST(BatchService, MultiWorkerArenaWorkingSetIsBounded) {
  BatchService service({.num_threads = 3});
  const BatchLayout layout = BatchLayout::interleaved(16, 500);
  CpuFactorOptions options;
  options.chunk_size = 64;
  Workload<float> w(layout);
  for (int i = 0; i < 20; ++i) {
    (void)service.factor<float>(layout, w.data.span(), options, w.info);
  }
  const ArenaStats stats = service.arena_stats();
  EXPECT_EQ(stats.live_leases, 0u);
  // 3 workers × 2 pack buffers, one size class: never more than 6 blocks.
  EXPECT_LE(stats.upstream_allocs, 6u);
  EXPECT_GT(stats.reuses, 0u);
}

TEST(BatchService, RecoverMatchesSynchronousRecovery) {
  const BatchLayout layout = BatchLayout::interleaved(12, 200);
  Workload<double> reference(layout);
  // Mix of failure modes: non-SPD (recoverable by shifting) and NaN.
  poison_matrix<double>(reference.layout, reference.data.span(), 5, 3);
  reference.data.span()[layout.index(9, 2, 1)] =
      std::numeric_limits<double>::quiet_NaN();
  reference.data.span()[layout.index(9, 1, 2)] =
      std::numeric_limits<double>::quiet_NaN();
  Workload<double> serviced = reference.clone();

  const RecoveryOptions recovery;
  const RecoveryReport want = factor_batch_recover<double>(
      layout, reference.data.span(), {}, recovery, reference.info);

  BatchService service({.num_threads = 2});
  const RecoveryReport got = service.recover<double>(
      layout, serviced.data.span(), {}, recovery, serviced.info);

  EXPECT_EQ(got.nonfinite, want.nonfinite);
  EXPECT_EQ(got.failed, want.failed);
  EXPECT_EQ(got.recovered, want.recovered);
  EXPECT_EQ(got.unrecoverable, want.unrecoverable);
  ASSERT_EQ(got.matrices.size(), want.matrices.size());
  for (std::size_t i = 0; i < got.matrices.size(); ++i) {
    EXPECT_EQ(got.matrices[i].index, want.matrices[i].index);
    EXPECT_EQ(got.matrices[i].recovered, want.matrices[i].recovered);
    EXPECT_EQ(got.matrices[i].shift, want.matrices[i].shift);
  }
  expect_identical(reference, serviced);
}

TEST(BatchService, GlobalServiceIsSingletonAndUsable) {
  BatchService& a = BatchService::global();
  BatchService& b = BatchService::global();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.threads(), 1);
  const BatchLayout layout = BatchLayout::interleaved(8, 64);
  Workload<float> w(layout);
  EXPECT_EQ(a.factor<float>(layout, w.data.span(), {}, w.info).failed_count,
            0);
}

// The facade switch: IBCHOL_SERVICE=1 routes BatchCholesky through the
// global service; results must match the direct driver bit for bit. The
// env variable is latched on first use, so this test (the only user of
// BatchCholesky in this binary) sets it before any facade call.
TEST(BatchService, FacadeRoutesThroughServiceUnderEnvFlag) {
  setenv("IBCHOL_SERVICE", "1", 1);
  const int n = 16;
  const std::int64_t batch = 300;
  const TuningParams params = recommended_params(n);
  const BatchLayout layout = BatchCholesky::make_layout(n, batch, params);
  Workload<float> reference(layout);
  Workload<float> serviced = reference.clone();

  const BatchCholesky chol(layout, params);
  const FactorResult got =
      chol.factorize<float>(serviced.data.span(), serviced.info);

  unsetenv("IBCHOL_SERVICE");
  const CpuFactorOptions opts = [&] {
    CpuFactorOptions o;
    o.nb = params.effective_nb(n);
    o.looking = params.looking;
    o.unroll = params.unroll;
    o.math = params.math;
    o.exec = params.exec;
    o.chunk_size = 0;
    return o;
  }();
  const FactorResult want = factor_batch_cpu<float>(
      layout, reference.data.span(), opts, reference.info);
  EXPECT_EQ(got.failed_count, want.failed_count);
  expect_identical(reference, serviced);
}

}  // namespace
}  // namespace ibchol::svc
