// Tests for the warp coalescing / memory-transaction analyzer.
#include <gtest/gtest.h>

#include "simt/coalescing.hpp"

namespace ibchol {
namespace {

TEST(Coalescing, UnitStrideFloatIsOneLine) {
  // 32 lanes x 4B contiguous = 128 bytes = 1 line, 4 sectors.
  const WarpAccess a = analyze_strided_access(4, 4);
  EXPECT_EQ(a.lines, 1);
  EXPECT_EQ(a.sectors, 4);
  EXPECT_DOUBLE_EQ(a.efficiency(), 1.0);
}

TEST(Coalescing, UnitStrideDoubleIsTwoLines) {
  const WarpAccess a = analyze_strided_access(8, 8);
  EXPECT_EQ(a.lines, 2);
  EXPECT_EQ(a.sectors, 8);
  EXPECT_DOUBLE_EQ(a.efficiency(), 1.0);
}

TEST(Coalescing, Stride8FloatHalfEfficiency) {
  // Lanes 32 bytes...: stride 8B means 4 lanes per 32B sector -> 8 sectors,
  // 128 useful bytes of 256 transferred.
  const WarpAccess a = analyze_strided_access(8, 4);
  EXPECT_EQ(a.sectors, 8);
  EXPECT_DOUBLE_EQ(a.efficiency(), 0.5);
}

TEST(Coalescing, LargeStrideFullyUncoalesced) {
  // One sector per lane.
  const WarpAccess a = analyze_strided_access(256, 4);
  EXPECT_EQ(a.sectors, 32);
  EXPECT_EQ(a.lines, 32);
  EXPECT_DOUBLE_EQ(a.efficiency(), 4.0 / 32.0);
}

TEST(Coalescing, CanonicalSmallMatrixStride) {
  // n=5 float: stride 100 bytes. Lanes land in distinct sectors, and a few
  // share lines.
  const WarpAccess a = analyze_strided_access(100, 4);
  EXPECT_EQ(a.sectors, 32);
  EXPECT_GT(a.lines, 24);
}

TEST(Coalescing, ZeroStrideBroadcast) {
  // All lanes read the same element: one sector.
  const WarpAccess a = analyze_strided_access(0, 4);
  EXPECT_EQ(a.sectors, 1);
  EXPECT_EQ(a.lines, 1);
}

TEST(Coalescing, ElementSpanningTwoSectors) {
  // Stride 48B with 8-byte elements: element at offset 24 spans sectors 0
  // and... checks the span loop.
  const WarpAccess a = analyze_strided_access(48, 8, 2);
  // lane0: [0,8) sector 0; lane1: [48,56) sector 1. 2 sectors.
  EXPECT_EQ(a.sectors, 2);
}

TEST(Coalescing, LayoutAccessInterleavedPerfect) {
  const auto layout = BatchLayout::interleaved(7, 16384);
  const WarpAccess a = analyze_layout_access(layout, 4);
  EXPECT_EQ(a.lines, 1);
  EXPECT_DOUBLE_EQ(a.efficiency(), 1.0);
}

TEST(Coalescing, LayoutAccessChunkedPerfect) {
  const auto layout = BatchLayout::interleaved_chunked(7, 16384, 64);
  const WarpAccess a = analyze_layout_access(layout, 4);
  EXPECT_EQ(a.lines, 1);
  EXPECT_DOUBLE_EQ(a.efficiency(), 1.0);
}

TEST(Coalescing, LayoutAccessCanonicalDegradesWithN) {
  // The paper's motivating observation: canonical batches of matrices
  // smaller than the warp cannot coalesce. n=3 float: stride 36B -> 32
  // separate sectors.
  const auto small = BatchLayout::canonical(3, 16384);
  EXPECT_EQ(analyze_layout_access(small, 4).sectors, 32);
  // n=2: stride 16B -> 2 lanes share a sector -> 16 sectors.
  const auto tiny = BatchLayout::canonical(2, 16384);
  EXPECT_EQ(analyze_layout_access(tiny, 4).sectors, 16);
}

TEST(Coalescing, EfficiencyMonotoneInStride) {
  double prev = 1.1;
  for (const std::int64_t stride : {4, 8, 16, 32, 64, 128}) {
    const double eff = analyze_strided_access(stride, 4).efficiency();
    EXPECT_LE(eff, prev);
    prev = eff;
  }
}

}  // namespace
}  // namespace ibchol
