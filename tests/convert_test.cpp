// Property tests for the storage-precision conversion primitives
// (cpu/simd/convert.*): the scalar bodies are the semantics, so they are
// pinned exhaustively over the whole 16-bit space, and every SIMD tier is
// held to the scalar result (bf16 bit-identical everywhere by design;
// fp16 bit-identical on finite values with NaN-stays-NaN).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <random>
#include <vector>

#include "cpu/simd/convert.hpp"
#include "cpu/simd/isa.hpp"

namespace ibchol {
namespace {

bool f32_is_nan(std::uint32_t bits) {
  return (bits & 0x7FFFFFFFu) > 0x7F800000u;
}

// Every tier the host can actually run, scalar first.
std::vector<SimdIsa> host_tiers() {
  std::vector<SimdIsa> tiers = {SimdIsa::kScalar};
  const SimdIsa best = detect_simd_isa();
  if (best == SimdIsa::kAvx2 || best == SimdIsa::kAvx512) {
    tiers.push_back(SimdIsa::kAvx2);
  }
  if (best == SimdIsa::kAvx512) tiers.push_back(SimdIsa::kAvx512);
  return tiers;
}

// ------------------------------------------------------------- bf16 -----

// Widening a bf16 word is exact (bits << 16), so narrowing it back must
// restore the identical word for every finite value; NaNs stay NaNs with
// the quiet bit forced. Exhaustive over all 65536 words.
TEST(Convert, Bf16RoundTripExhaustive) {
  for (std::uint32_t h = 0; h <= 0xFFFFu; ++h) {
    const auto word = static_cast<std::uint16_t>(h);
    const float wide = f32_from_bf16(word);
    const std::uint16_t back = bf16_from_f32(wide);
    if ((word & 0x7F80u) == 0x7F80u && (word & 0x007Fu) != 0) {  // NaN
      EXPECT_TRUE(std::isnan(wide)) << "word " << h;
      EXPECT_EQ(back, word | 0x0040u) << "word " << h;
    } else {
      EXPECT_EQ(back, word) << "word " << h;
    }
  }
}

// Round-to-nearest with ties to even, checked at exact tie points around
// 1.0 (bf16 ulp there is 2^-7, so half-ulp ties sit at odd multiples of
// 2^-8).
TEST(Convert, Bf16TiesToEven) {
  const float ulp = 0x1.0p-7f;
  // 1 + ulp/2: tie between mantissa 0 (even) and 1 (odd) -> stays 1.0.
  EXPECT_EQ(bf16_from_f32(1.0f + 0x1.0p-8f), bf16_from_f32(1.0f));
  // 1 + 3*ulp/2: tie between mantissa 1 (odd) and 2 (even) -> rounds up.
  EXPECT_EQ(bf16_from_f32(1.0f + 0x3.0p-8f), bf16_from_f32(1.0f + 2 * ulp));
  // Just past a tie rounds away from the tie regardless of parity.
  EXPECT_EQ(bf16_from_f32(std::nextafter(1.0f + 0x1.0p-8f, 2.0f)),
            bf16_from_f32(1.0f + ulp));
}

TEST(Convert, Bf16SpecialValues) {
  EXPECT_EQ(bf16_from_f32(0.0f), 0x0000u);
  EXPECT_EQ(bf16_from_f32(-0.0f), 0x8000u);
  EXPECT_EQ(bf16_from_f32(INFINITY), 0x7F80u);
  EXPECT_EQ(bf16_from_f32(-INFINITY), 0xFF80u);
  EXPECT_TRUE(std::isnan(f32_from_bf16(bf16_from_f32(NAN))));
  // A signaling NaN narrows to a quiet NaN, never to Inf.
  const float snan = std::bit_cast<float>(0x7F800001u);
  const std::uint16_t h = bf16_from_f32(snan);
  EXPECT_TRUE((h & 0x7F80u) == 0x7F80u && (h & 0x007Fu) != 0);
  EXPECT_TRUE(h & 0x0040u);
  // fp32 denormals narrow without flushing (bf16 shares the exponent
  // range, so the top mantissa bits survive).
  const float denorm = std::bit_cast<float>(0x00400000u);  // 2^-127
  EXPECT_EQ(f32_from_bf16(bf16_from_f32(denorm)), denorm);
}

// ------------------------------------------------------------- fp16 -----

// binary16 -> fp32 widening is exact, so the round trip restores every
// finite word and both infinities; NaN payloads widen in place and narrow
// back with the quiet bit forced.
TEST(Convert, Fp16RoundTripExhaustive) {
  for (std::uint32_t h = 0; h <= 0xFFFFu; ++h) {
    const auto word = static_cast<std::uint16_t>(h);
    const float wide = f32_from_fp16(word);
    const std::uint16_t back = fp16_from_f32(wide);
    if ((word & 0x7C00u) == 0x7C00u && (word & 0x03FFu) != 0) {  // NaN
      EXPECT_TRUE(std::isnan(wide)) << "word " << h;
      EXPECT_EQ(back, word | 0x0200u) << "word " << h;
    } else {
      EXPECT_EQ(back, word) << "word " << h;
    }
  }
}

TEST(Convert, Fp16TiesAndRanges) {
  // Ties to even at 1.0 (fp16 ulp 2^-10).
  EXPECT_EQ(fp16_from_f32(1.0f + 0x1.0p-11f), fp16_from_f32(1.0f));
  EXPECT_EQ(fp16_from_f32(1.0f + 0x3.0p-11f), fp16_from_f32(1.0f + 0x1.0p-9f));
  // Overflow: max finite is 65504; the rounding boundary to Inf is 65520.
  EXPECT_EQ(fp16_from_f32(65504.0f), 0x7BFFu);
  EXPECT_EQ(fp16_from_f32(65519.996f), 0x7BFFu);
  EXPECT_EQ(fp16_from_f32(65520.0f), 0x7C00u);  // tie rounds up to Inf
  EXPECT_EQ(fp16_from_f32(1e6f), 0x7C00u);
  EXPECT_EQ(fp16_from_f32(-1e6f), 0xFC00u);
  // Subnormals: smallest is 2^-24; half of it ties down to +0, anything
  // above the tie rounds up.
  EXPECT_EQ(fp16_from_f32(0x1.0p-24f), 0x0001u);
  EXPECT_EQ(fp16_from_f32(0x1.0p-25f), 0x0000u);  // tie to even (zero)
  EXPECT_EQ(fp16_from_f32(std::nextafter(0x1.0p-25f, 1.0f)), 0x0001u);
  // Largest subnormal rounds up into the smallest normal when the carry
  // demands it.
  EXPECT_EQ(fp16_from_f32(std::nextafter(0x1.0p-14f, 0.0f)), 0x0400u);
  // Signed zero and deep underflow.
  EXPECT_EQ(fp16_from_f32(-0.0f), 0x8000u);
  EXPECT_EQ(fp16_from_f32(-0x1.0p-30f), 0x8000u);
}

// -------------------------------------------------- non-finite screen ---

// The service's poison screen tests the 16-bit words directly; the bit
// test must agree with isfinite() of the widened value on every word.
TEST(Convert, NonFiniteScreenMatchesWiden) {
  for (std::uint32_t h = 0; h <= 0xFFFFu; ++h) {
    const auto word = static_cast<std::uint16_t>(h);
    EXPECT_EQ(is_nonfinite_bf16(word), !std::isfinite(f32_from_bf16(word)))
        << "bf16 word " << h;
    EXPECT_EQ(is_nonfinite_fp16(word), !std::isfinite(f32_from_fp16(word)))
        << "fp16 word " << h;
  }
  EXPECT_TRUE(is_nonfinite_prec(0x7F80u, StoragePrec::kBf16));
  EXPECT_TRUE(is_nonfinite_prec(0x7C00u, StoragePrec::kFp16));
  EXPECT_FALSE(is_nonfinite_prec(0x7C00u, StoragePrec::kBf16));
}

// ----------------------------------------------------- row-API tiers ----

// Input vector mixing edge cases with randoms, at a length that exercises
// the vector bodies, their tails, and misaligned starts.
std::vector<float> edge_and_random_floats(std::size_t count) {
  std::vector<float> v = {
      0.0f,      -0.0f,         1.0f,          -1.0f,
      INFINITY,  -INFINITY,     0x1.0p-24f,    0x1.0p-25f,
      65504.0f,  65520.0f,      1.0f + 0x1.0p-11f, 1.0f + 0x1.0p-8f,
      std::bit_cast<float>(0x00400000u),  // fp32 denormal
      std::bit_cast<float>(0x7FC00001u),  // quiet NaN with payload
  };
  std::mt19937 rng(1234);
  std::uniform_real_distribution<float> dist(-100.0f, 100.0f);
  while (v.size() < count) v.push_back(dist(rng));
  return v;
}

// bf16 conversion is pure integer emulation on every tier, so narrow_row
// and widen_row must be bit-identical to the scalar primitives everywhere
// — including NaN payloads and denormals (no vcvtneps2bf16 flush).
TEST(Convert, Bf16RowTiersBitIdenticalToScalar) {
  const std::vector<float> src = edge_and_random_floats(517);
  for (SimdIsa tier : host_tiers()) {
    for (std::size_t offset : {std::size_t{0}, std::size_t{3}}) {
      const std::size_t count = src.size() - offset;
      std::vector<std::uint16_t> narrow(count);
      narrow_row(tier, StoragePrec::kBf16, src.data() + offset, narrow.data(),
                 static_cast<std::int64_t>(count), false);
      std::vector<float> wide(count);
      widen_row(tier, StoragePrec::kBf16, narrow.data(), wide.data(),
                static_cast<std::int64_t>(count));
      for (std::size_t i = 0; i < count; ++i) {
        EXPECT_EQ(narrow[i], bf16_from_f32(src[offset + i]))
            << "tier " << static_cast<int>(tier) << " i=" << i;
        EXPECT_EQ(std::bit_cast<std::uint32_t>(wide[i]),
                  f32_bits_from_bf16_bits(narrow[i]))
            << "tier " << static_cast<int>(tier) << " i=" << i;
      }
    }
  }
}

// fp16 tiers (F16C) match the scalar algorithm bit-for-bit on all finite
// values and infinities; NaNs must stay NaNs on both paths.
TEST(Convert, Fp16RowTiersMatchScalar) {
  const std::vector<float> src = edge_and_random_floats(517);
  for (SimdIsa tier : host_tiers()) {
    std::vector<std::uint16_t> narrow(src.size());
    narrow_row(tier, StoragePrec::kFp16, src.data(), narrow.data(),
               static_cast<std::int64_t>(src.size()), false);
    std::vector<float> wide(src.size());
    widen_row(tier, StoragePrec::kFp16, narrow.data(), wide.data(),
              static_cast<std::int64_t>(src.size()));
    for (std::size_t i = 0; i < src.size(); ++i) {
      const std::uint16_t want = fp16_from_f32(src[i]);
      if (f32_is_nan(std::bit_cast<std::uint32_t>(src[i]))) {
        EXPECT_TRUE((narrow[i] & 0x7C00u) == 0x7C00u &&
                    (narrow[i] & 0x03FFu) != 0)
            << "tier " << static_cast<int>(tier) << " i=" << i;
        EXPECT_TRUE(std::isnan(wide[i]));
      } else {
        EXPECT_EQ(narrow[i], want)
            << "tier " << static_cast<int>(tier) << " i=" << i;
        EXPECT_EQ(std::bit_cast<std::uint32_t>(wide[i]),
                  f32_bits_from_fp16_bits(narrow[i]));
      }
    }
  }
}

// Non-temporal narrowing writes the same bits as the plain path (the hint
// changes the store instruction, never the value); pair with the fence.
TEST(Convert, NarrowRowNtStoresSameBits) {
  const std::vector<float> src = edge_and_random_floats(1024);
  for (SimdIsa tier : host_tiers()) {
    for (StoragePrec prec : {StoragePrec::kBf16, StoragePrec::kFp16}) {
      std::vector<std::uint16_t> plain(src.size()), nt(src.size());
      narrow_row(tier, prec, src.data(), plain.data(),
                 static_cast<std::int64_t>(src.size()), false);
      narrow_row(tier, prec, src.data(), nt.data(),
                 static_cast<std::int64_t>(src.size()), true);
      narrow_fence();
      EXPECT_EQ(plain, nt) << "tier " << static_cast<int>(tier) << " prec "
                           << to_string(prec);
    }
  }
}

// IBCHOL_CONVERT_ISA forces the conversion tier independently of the
// compute tier — the hook check.sh --prec uses to soak the scalar bodies.
TEST(Convert, ResolveConvertIsaHonorsEnvOverride) {
  const char* saved = std::getenv("IBCHOL_CONVERT_ISA");
  const std::string saved_copy = saved ? saved : "";
  setenv("IBCHOL_CONVERT_ISA", "scalar", 1);
  EXPECT_EQ(resolve_convert_isa(), SimdIsa::kScalar);
  // Unknown spellings are ignored, falling back to the default resolution
  // (never kAuto).
  setenv("IBCHOL_CONVERT_ISA", "quantum", 1);
  EXPECT_NE(resolve_convert_isa(), SimdIsa::kAuto);
  if (saved) {
    setenv("IBCHOL_CONVERT_ISA", saved_copy.c_str(), 1);
  } else {
    unsetenv("IBCHOL_CONVERT_ISA");
  }
}

// narrow_f32 / widen_f32 dispatch to the right format.
TEST(Convert, PrecisionGenericHelpers) {
  EXPECT_EQ(narrow_f32(1.5f, StoragePrec::kBf16), bf16_from_f32(1.5f));
  EXPECT_EQ(narrow_f32(1.5f, StoragePrec::kFp16), fp16_from_f32(1.5f));
  EXPECT_EQ(widen_f32(0x3FC0u, StoragePrec::kBf16), 1.5f);
  EXPECT_EQ(widen_f32(0x3E00u, StoragePrec::kFp16), 1.5f);
}

}  // namespace
}  // namespace ibchol
