// Tests for src/util: statistics, CSV, CLI, RNG, aligned storage, tables.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>

#include "util/aligned_buffer.hpp"
#include "util/ascii_chart.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace ibchol {
namespace {

// ---------------------------------------------------------------- stats --

TEST(Stats, MeanOfKnownValues) {
  const double xs[] = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Stats, MeanOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(mean(std::span<const double>{}), 0.0);
}

TEST(Stats, VarianceAndStddev) {
  const double xs[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
}

TEST(Stats, VarianceOfSingletonIsZero) {
  const double xs[] = {42.0};
  EXPECT_DOUBLE_EQ(variance(xs), 0.0);
}

TEST(Stats, MedianOddAndEven) {
  const double odd[] = {3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(median(odd), 2.0);
  const double even[] = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Stats, QuantileInterpolates) {
  const double xs[] = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 0.0);
}

TEST(Stats, QuantileRejectsOutOfRange) {
  const double xs[] = {1.0};
  EXPECT_THROW((void)quantile(xs, 1.5), Error);
}

TEST(Stats, MseOfIdenticalIsZero) {
  const double a[] = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(mse(a, a), 0.0);
}

TEST(Stats, MseKnownValue) {
  const double a[] = {1.0, 2.0};
  const double b[] = {2.0, 4.0};
  EXPECT_DOUBLE_EQ(mse(a, b), (1.0 + 4.0) / 2.0);
}

TEST(Stats, MseRejectsSizeMismatch) {
  const double a[] = {1.0};
  const double b[] = {1.0, 2.0};
  EXPECT_THROW((void)mse(a, b), Error);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const double a[] = {1.0, 2.0, 3.0};
  const double b[] = {10.0, 20.0, 30.0};
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
}

TEST(Stats, PearsonPerfectAnticorrelation) {
  const double a[] = {1.0, 2.0, 3.0};
  const double b[] = {3.0, 2.0, 1.0};
  EXPECT_NEAR(pearson(a, b), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSideIsZero) {
  const double a[] = {1.0, 1.0, 1.0};
  const double b[] = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(pearson(a, b), 0.0);
}

TEST(Stats, RSquaredPerfectFit) {
  const double t[] = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(r_squared(t, t), 1.0);
}

TEST(Stats, RSquaredMeanPredictorIsZero) {
  const double t[] = {1.0, 2.0, 3.0};
  const double p[] = {2.0, 2.0, 2.0};
  EXPECT_NEAR(r_squared(t, p), 0.0, 1e-12);
}

TEST(Stats, SummarizeFields) {
  const double xs[] = {1.0, 5.0, 3.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
}

// ------------------------------------------------------------------ rng --

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int diff = 0;
  for (int i = 0; i < 10; ++i) diff += (a() != b());
  EXPECT_GT(diff, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIndexInRange) {
  Xoshiro256 rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 300; ++i) {
    const auto v = rng.uniform_index(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Xoshiro256 rng(11);
  double sum = 0.0, sq = 0.0;
  const int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.05);
  EXPECT_NEAR(sq / kN, 1.0, 0.05);
}

TEST(Rng, SplitStreamsAreIndependentlySeeded) {
  Xoshiro256 base(9);
  Xoshiro256 s1 = base.split(1);
  Xoshiro256 s2 = base.split(2);
  EXPECT_NE(s1(), s2());
}

// ------------------------------------------------------------------ csv --

TEST(Csv, RoundTripSimpleTable) {
  CsvTable t;
  t.header = {"a", "b"};
  t.rows = {{"1", "x"}, {"2", "y"}};
  const CsvTable back = parse_csv(to_csv(t));
  EXPECT_EQ(back.header, t.header);
  EXPECT_EQ(back.rows, t.rows);
}

TEST(Csv, QuotedFieldsWithCommasAndQuotes) {
  CsvTable t;
  t.header = {"text"};
  t.rows = {{"hello, \"world\""}};
  const CsvTable back = parse_csv(to_csv(t));
  EXPECT_EQ(back.rows[0][0], "hello, \"world\"");
}

TEST(Csv, ParsesCrlfLineEndings) {
  const CsvTable t = parse_csv("a,b\r\n1,2\r\n");
  ASSERT_EQ(t.rows.size(), 1u);
  EXPECT_EQ(t.rows[0][1], "2");
}

TEST(Csv, ColumnLookup) {
  CsvTable t;
  t.header = {"n", "gflops"};
  EXPECT_EQ(t.column("gflops"), 1u);
  EXPECT_THROW((void)t.column("missing"), Error);
}

TEST(Csv, RowWidthMismatchRejected) {
  EXPECT_THROW((void)parse_csv("a,b\n1\n"), Error);
}

TEST(Csv, EscapePassesPlainFieldsThrough) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
}

// ------------------------------------------------------------------ cli --

TEST(Cli, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--n=32", "--batch", "1024", "--verbose"};
  const Cli cli(5, argv);
  EXPECT_EQ(cli.get_int("n", 0), 32);
  EXPECT_EQ(cli.get_int("batch", 0), 1024);
  EXPECT_TRUE(cli.get_bool("verbose", false));
}

TEST(Cli, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  const Cli cli(1, argv);
  EXPECT_EQ(cli.get("mode", "auto"), "auto");
  EXPECT_DOUBLE_EQ(cli.get_double("x", 2.5), 2.5);
  EXPECT_FALSE(cli.has("mode"));
}

TEST(Cli, PositionalArguments) {
  const char* argv[] = {"prog", "file1", "--k=2", "file2"};
  const Cli cli(4, argv);
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "file1");
  EXPECT_EQ(cli.positional()[1], "file2");
}

TEST(Cli, RejectsMalformedNumbers) {
  const char* argv[] = {"prog", "--n=abc"};
  const Cli cli(2, argv);
  EXPECT_THROW((void)cli.get_int("n", 0), Error);
}

TEST(Cli, BooleanSpellings) {
  const char* argv[] = {"prog", "--a=yes", "--b=off", "--c=1"};
  const Cli cli(4, argv);
  EXPECT_TRUE(cli.get_bool("a", false));
  EXPECT_FALSE(cli.get_bool("b", true));
  EXPECT_TRUE(cli.get_bool("c", false));
}

// --------------------------------------------------------- aligned buffer --

TEST(AlignedBuffer, AlignmentAndZeroInit) {
  AlignedBuffer<float> buf(1000);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % kBatchAlignment,
            0u);
  for (std::size_t i = 0; i < buf.size(); ++i) EXPECT_EQ(buf[i], 0.0f);
}

TEST(AlignedBuffer, ResizeDiscardsAndRealigns) {
  AlignedBuffer<double> buf(10);
  buf[0] = 5.0;
  buf.resize(20);
  EXPECT_EQ(buf.size(), 20u);
  EXPECT_EQ(buf[0], 0.0);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % kBatchAlignment,
            0u);
}

TEST(AlignedBuffer, EmptyBuffer) {
  AlignedBuffer<float> buf;
  EXPECT_TRUE(buf.empty());
  buf.resize(0);
  EXPECT_EQ(buf.size(), 0u);
}

// ---------------------------------------------------------------- table --

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"x", "1.00"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("1.00"), std::string::npos);
}

TEST(TextTable, RejectsWrongWidth) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), Error);
}

TEST(TextTable, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

// ---------------------------------------------------------------- chart --

TEST(AsciiChart, ContainsMarkersAndLegend) {
  Series s;
  s.name = "perf";
  s.x = {0, 1, 2, 3};
  s.y = {0, 10, 20, 15};
  ChartOptions opt;
  opt.title = "test chart";
  const std::string out = render_chart({s}, opt);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("perf"), std::string::npos);
  EXPECT_NE(out.find("test chart"), std::string::npos);
}

TEST(AsciiChart, HandlesEmptySeries) {
  const std::string out = render_chart({}, {});
  EXPECT_FALSE(out.empty());
}

TEST(AsciiChart, ScatterUsesDistinctMarkers) {
  Series a{"a", {0, 1}, {0, 1}};
  Series b{"b", {0, 1}, {1, 0}};
  const std::string out = render_scatter({a, b}, {});
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('+'), std::string::npos);
}

}  // namespace
}  // namespace ibchol
