// Tests for the regression tree and random forest.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "forest/forest.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace ibchol {
namespace {

// Synthetic regression problem: y = 3*x0 + step(x1) + noise; x2 is pure
// noise. 300 rows.
struct Problem {
  FeatureMatrix x{{"x0", "x1", "x2"}, 0};
  std::vector<double> y;
};

Problem make_problem(std::size_t rows = 300, double noise = 0.05,
                     std::uint64_t seed = 42) {
  Problem p;
  Xoshiro256 rng(seed);
  for (std::size_t r = 0; r < rows; ++r) {
    const double x0 = rng.uniform();
    const double x1 = rng.uniform();
    const double x2 = rng.uniform();
    const double row[] = {x0, x1, x2};
    p.x.add_row(row);
    p.y.push_back(3.0 * x0 + (x1 > 0.5 ? 1.0 : 0.0) + noise * rng.normal());
  }
  return p;
}

// ------------------------------------------------------------- dataset ---

TEST(FeatureMatrix, AddRowAndLookup) {
  FeatureMatrix m({"a", "b"}, 0);
  const double row[] = {1.0, 2.0};
  m.add_row(row);
  EXPECT_EQ(m.rows(), 1u);
  EXPECT_EQ(m.at(0, 1), 2.0);
  EXPECT_EQ(m.column_index("b"), 1u);
  EXPECT_THROW((void)m.column_index("c"), Error);
  const double bad[] = {1.0};
  EXPECT_THROW(m.add_row(bad), Error);
}

// ---------------------------------------------------------------- tree ---

TEST(RegressionTree, ConstantTargetYieldsSingleLeaf) {
  FeatureMatrix x({"f"}, 0);
  std::vector<double> y;
  for (int i = 0; i < 20; ++i) {
    const double row[] = {static_cast<double>(i)};
    x.add_row(row);
    y.push_back(7.0);
  }
  std::vector<std::size_t> idx(20);
  std::iota(idx.begin(), idx.end(), 0);
  RegressionTree tree;
  Xoshiro256 rng(1);
  tree.fit(x, y, idx, {}, rng);
  EXPECT_EQ(tree.node_count(), 1u);
  const double probe[] = {10.0};
  EXPECT_DOUBLE_EQ(tree.predict(probe), 7.0);
}

TEST(RegressionTree, LearnsStepFunction) {
  FeatureMatrix x({"f"}, 0);
  std::vector<double> y;
  for (int i = 0; i < 100; ++i) {
    const double v = i / 100.0;
    const double row[] = {v};
    x.add_row(row);
    y.push_back(v < 0.5 ? 0.0 : 10.0);
  }
  std::vector<std::size_t> idx(100);
  std::iota(idx.begin(), idx.end(), 0);
  RegressionTree tree;
  Xoshiro256 rng(2);
  TreeOptions opt;
  opt.mtry = 1;
  tree.fit(x, y, idx, opt, rng);
  const double lo[] = {0.2};
  const double hi[] = {0.8};
  EXPECT_NEAR(tree.predict(lo), 0.0, 1e-9);
  EXPECT_NEAR(tree.predict(hi), 10.0, 1e-9);
}

TEST(RegressionTree, RespectsMaxDepth) {
  const Problem p = make_problem();
  std::vector<std::size_t> idx(p.x.rows());
  std::iota(idx.begin(), idx.end(), 0);
  RegressionTree tree;
  Xoshiro256 rng(3);
  TreeOptions opt;
  opt.max_depth = 3;
  tree.fit(p.x, p.y, idx, opt, rng);
  EXPECT_LE(tree.depth(), 3);
}

TEST(RegressionTree, RespectsMinLeaf) {
  const Problem p = make_problem(50);
  std::vector<std::size_t> idx(p.x.rows());
  std::iota(idx.begin(), idx.end(), 0);
  RegressionTree tree;
  Xoshiro256 rng(4);
  TreeOptions opt;
  opt.min_leaf = 25;
  tree.fit(p.x, p.y, idx, opt, rng);
  // With min_leaf = half the data, at most one split is possible.
  EXPECT_LE(tree.node_count(), 3u);
}

// -------------------------------------------------------------- forest ---

TEST(RandomForest, BeatsMeanPredictor) {
  const Problem p = make_problem();
  RandomForest forest;
  ForestOptions opt;
  opt.num_trees = 60;
  forest.fit(p.x, p.y, opt);
  const double var = variance(p.y);  // MSE of predicting the mean
  EXPECT_LT(forest.oob_mse(), 0.3 * var);
}

TEST(RandomForest, PredictTracksTruth) {
  const Problem p = make_problem();
  RandomForest forest;
  ForestOptions opt;
  opt.num_trees = 60;
  forest.fit(p.x, p.y, opt);
  const std::vector<double> pred = forest.predict(p.x);
  EXPECT_GT(pearson(p.y, pred), 0.95);
}

TEST(RandomForest, OobPredictionsCorrelate) {
  const Problem p = make_problem();
  RandomForest forest;
  ForestOptions opt;
  opt.num_trees = 80;
  forest.fit(p.x, p.y, opt);
  std::vector<double> obs, pred;
  for (std::size_t i = 0; i < p.y.size(); ++i) {
    if (!std::isnan(forest.oob_predictions()[i])) {
      obs.push_back(p.y[i]);
      pred.push_back(forest.oob_predictions()[i]);
    }
  }
  EXPECT_GT(obs.size(), p.y.size() / 2);
  EXPECT_GT(pearson(obs, pred), 0.9);
}

TEST(RandomForest, ImportanceIdentifiesInformativeFeatures) {
  const Problem p = make_problem(400);
  RandomForest forest;
  ForestOptions opt;
  opt.num_trees = 80;
  forest.fit(p.x, p.y, opt);
  const std::vector<double> imp = forest.permutation_importance();
  ASSERT_EQ(imp.size(), 3u);
  EXPECT_GT(imp[0], imp[2]);          // x0 carries the most signal
  EXPECT_GT(imp[1], imp[2]);          // the step feature matters too
  EXPECT_GT(imp[0], 10.0 * std::max(imp[2], 1e-6));  // noise is negligible
}

TEST(RandomForest, DeterministicInSeed) {
  const Problem p = make_problem();
  ForestOptions opt;
  opt.num_trees = 20;
  RandomForest a, b;
  a.fit(p.x, p.y, opt);
  b.fit(p.x, p.y, opt);
  EXPECT_EQ(a.oob_mse(), b.oob_mse());
  opt.seed = 999;
  RandomForest c;
  c.fit(p.x, p.y, opt);
  EXPECT_NE(a.oob_mse(), c.oob_mse());
}

TEST(RandomForest, MoreTreesNotWorse) {
  const Problem p = make_problem();
  ForestOptions few;
  few.num_trees = 5;
  ForestOptions many;
  many.num_trees = 100;
  RandomForest a, b;
  a.fit(p.x, p.y, few);
  b.fit(p.x, p.y, many);
  EXPECT_LT(b.oob_mse(), a.oob_mse() * 1.2);
}

TEST(RandomForest, AverageDepthReported) {
  const Problem p = make_problem();
  RandomForest forest;
  ForestOptions opt;
  opt.num_trees = 10;
  forest.fit(p.x, p.y, opt);
  EXPECT_GT(forest.average_depth(), 1.0);
  EXPECT_LT(forest.average_depth(), 40.0);
  EXPECT_EQ(forest.num_trees(), 10);
}

TEST(RandomForest, RejectsMisuse) {
  RandomForest forest;
  const double probe[] = {0.0};
  EXPECT_THROW((void)forest.predict(probe), Error);
  FeatureMatrix x({"f"}, 0);
  std::vector<double> y{1.0};
  EXPECT_THROW(forest.fit(x, y, {}), Error);  // size mismatch
}

}  // namespace
}  // namespace ibchol
