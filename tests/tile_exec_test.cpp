// Tests for the CPU tile-program executor: every kernel variant must
// reproduce the reference factorization on interleaved data.
#include <gtest/gtest.h>

#include <vector>

#include "cpu/reference.hpp"
#include "cpu/tile_exec.hpp"
#include "layout/convert.hpp"
#include "layout/generate.hpp"
#include "util/aligned_buffer.hpp"

namespace ibchol {
namespace {

struct ExecCase {
  int n;
  int nb;
  Looking looking;
  MathMode math;
};

void PrintTo(const ExecCase& c, std::ostream* os) {
  *os << "n" << c.n << "_nb" << c.nb << "_" << to_string(c.looking) << "_"
      << to_string(c.math);
}

class TileExecTest : public ::testing::TestWithParam<ExecCase> {};

// Factors one lane block of 32 matrices with the interpreter and checks
// every matrix against the reference factorization.
TEST_P(TileExecTest, MatchesReference) {
  const auto [n, nb, looking, math] = GetParam();
  const auto layout = BatchLayout::interleaved(n, kLaneBlock);
  AlignedBuffer<float> data(layout.size_elems());
  generate_spd_batch<float>(layout, data.span(),
                            {SpdKind::kGramPlusDiagonal, 777, 100.0});

  // Reference factors from the same inputs.
  std::vector<std::vector<float>> expected(kLaneBlock);
  for (int b = 0; b < kLaneBlock; ++b) {
    expected[b].resize(static_cast<std::size_t>(n) * n);
    extract_matrix<float>(layout, std::span<const float>(data.span()), b,
                          expected[b]);
    ASSERT_EQ(potrf_unblocked(n, expected[b].data(), n), 0);
  }

  const TileProgram program = build_tile_program(n, nb, looking);
  alignas(64) std::int32_t info[kLaneBlock] = {};
  execute_program_lane_block<float>(program, math, data.data(),
                                    layout.chunk(), info);

  // Fast math trades a few ulps; allow a looser tolerance there.
  const float tol = math == MathMode::kFastMath ? 2e-4f : 5e-5f;
  std::vector<float> got(static_cast<std::size_t>(n) * n);
  for (int b = 0; b < kLaneBlock; ++b) {
    EXPECT_EQ(info[b], 0);
    extract_matrix<float>(layout, std::span<const float>(data.span()), b, got);
    for (int j = 0; j < n; ++j) {
      for (int i = j; i < n; ++i) {
        const float e = expected[b][i + static_cast<std::size_t>(j) * n];
        const float g = got[i + static_cast<std::size_t>(j) * n];
        ASSERT_NEAR(g, e, tol * std::max(1.0f, std::abs(e)))
            << "b=" << b << " (" << i << "," << j << ")";
      }
    }
  }
}

std::vector<ExecCase> exec_cases() {
  std::vector<ExecCase> cases;
  for (const int n : {1, 2, 3, 4, 5, 7, 8, 11, 16, 17, 24, 31, 33, 48}) {
    for (const int nb : {1, 2, 3, 4, 5, 8}) {
      if (nb > n) continue;
      for (const auto looking :
           {Looking::kRight, Looking::kLeft, Looking::kTop}) {
        cases.push_back({n, nb, looking, MathMode::kIeee});
      }
    }
  }
  // Fast math: a representative subset.
  for (const int n : {4, 8, 24, 33}) {
    cases.push_back({n, std::min(n, 8), Looking::kTop, MathMode::kFastMath});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(VariantGrid, TileExecTest,
                         ::testing::ValuesIn(exec_cases()));

// ------------------------------------------------------ whole-matrix -----

class WholeMatrixTest : public ::testing::TestWithParam<int> {};

TEST_P(WholeMatrixTest, MatchesReference) {
  const int n = GetParam();
  const auto layout = BatchLayout::interleaved(n, kLaneBlock);
  AlignedBuffer<double> data(layout.size_elems());
  generate_spd_batch<double>(layout, data.span());

  std::vector<double> expected(static_cast<std::size_t>(n) * n);
  extract_matrix<double>(layout, std::span<const double>(data.span()), 7,
                         expected);
  ASSERT_EQ(potrf_unblocked(n, expected.data(), n), 0);

  std::vector<double> scratch(whole_matrix_scratch_elems(n));
  alignas(64) std::int32_t info[kLaneBlock] = {};
  execute_whole_matrix_lane_block<double>(n, MathMode::kIeee, data.data(),
                                          layout.chunk(), info,
                                          scratch.data());
  for (int b = 0; b < kLaneBlock; ++b) EXPECT_EQ(info[b], 0);

  std::vector<double> got(static_cast<std::size_t>(n) * n);
  extract_matrix<double>(layout, std::span<const double>(data.span()), 7, got);
  for (int j = 0; j < n; ++j) {
    for (int i = j; i < n; ++i) {
      EXPECT_NEAR(got[i + static_cast<std::size_t>(j) * n],
                  expected[i + static_cast<std::size_t>(j) * n], 1e-10);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, WholeMatrixTest,
                         ::testing::Values(1, 2, 5, 8, 16, 21, 32, 48, 64));

// -------------------------------------------------------- chunk strides --

TEST(TileExec, WorksInsideLargerChunk) {
  // A lane block in the middle of a 128-matrix chunk: base offset and
  // element stride must be honored.
  const int n = 6;
  const auto layout = BatchLayout::interleaved_chunked(n, 128, 128);
  AlignedBuffer<float> data(layout.size_elems());
  generate_spd_batch<float>(layout, data.span());

  std::vector<float> expected(n * n);
  extract_matrix<float>(layout, std::span<const float>(data.span()), 64 + 3,
                        expected);
  ASSERT_EQ(potrf_unblocked(n, expected.data(), n), 0);

  const TileProgram program = build_tile_program(n, 3, Looking::kTop);
  // Factor the lane block starting at matrix 64.
  execute_program_lane_block<float>(program, MathMode::kIeee,
                                    data.data() + 64, layout.chunk(),
                                    nullptr);
  std::vector<float> got(n * n);
  extract_matrix<float>(layout, std::span<const float>(data.span()), 64 + 3,
                        got);
  for (int j = 0; j < n; ++j) {
    for (int i = j; i < n; ++i) {
      EXPECT_NEAR(got[i + static_cast<std::size_t>(j) * n],
                  expected[i + static_cast<std::size_t>(j) * n], 1e-4);
    }
  }
  // Matrices of the first lane block are untouched.
  std::vector<float> other(n * n);
  extract_matrix<float>(layout, std::span<const float>(data.span()), 5, other);
  std::vector<float> pristine(n * n);
  AlignedBuffer<float> fresh(layout.size_elems());
  generate_spd_batch<float>(layout, fresh.span());
  extract_matrix<float>(layout, std::span<const float>(fresh.span()), 5,
                        pristine);
  EXPECT_EQ(other, pristine);
}

// ------------------------------------------------------------- failures --

TEST(TileExec, InfoReportsFailingColumnPerLane) {
  const int n = 8;
  const auto layout = BatchLayout::interleaved(n, kLaneBlock);
  AlignedBuffer<float> data(layout.size_elems());
  generate_spd_batch<float>(layout, data.span());
  poison_matrix<float>(layout, data.span(), 3, 2);
  poison_matrix<float>(layout, data.span(), 19, 6);

  const TileProgram program = build_tile_program(n, 4, Looking::kLeft);
  alignas(64) std::int32_t info[kLaneBlock] = {};
  execute_program_lane_block<float>(program, MathMode::kIeee, data.data(),
                                    layout.chunk(), info);
  for (int b = 0; b < kLaneBlock; ++b) {
    if (b == 3) {
      EXPECT_EQ(info[b], 3);  // 1-based column
    } else if (b == 19) {
      EXPECT_EQ(info[b], 7);
    } else {
      EXPECT_EQ(info[b], 0);
    }
  }
}

TEST(TileExec, WholeMatrixInfoReporting) {
  const int n = 10;
  const auto layout = BatchLayout::interleaved(n, kLaneBlock);
  AlignedBuffer<float> data(layout.size_elems());
  generate_spd_batch<float>(layout, data.span());
  poison_matrix<float>(layout, data.span(), 11, 9);
  std::vector<float> scratch(whole_matrix_scratch_elems(n));
  alignas(64) std::int32_t info[kLaneBlock] = {};
  execute_whole_matrix_lane_block<float>(n, MathMode::kFastMath, data.data(),
                                         layout.chunk(), info,
                                         scratch.data());
  EXPECT_EQ(info[11], 10);
  EXPECT_EQ(info[0], 0);
}

TEST(TileExec, RejectsOversizedTiles) {
  TileProgram p = build_tile_program(16, 8, Looking::kTop);
  p.nb = 9;  // lie about the tile size
  AlignedBuffer<float> data(16 * 16 * 32);
  EXPECT_THROW(execute_program_lane_block<float>(p, MathMode::kIeee,
                                                 data.data(), 32, nullptr),
               Error);
}

TEST(TileExec, ScratchSizeFormula) {
  EXPECT_EQ(whole_matrix_scratch_elems(1), 1u * kLaneBlock);
  EXPECT_EQ(whole_matrix_scratch_elems(8), 36u * kLaneBlock);
  EXPECT_EQ(whole_matrix_scratch_elems(64), 2080u * kLaneBlock);
}


TEST(TileExec, LargeDimensionsBeyondThePaperRange) {
  // No artificial cap at the paper's n = 64: the executor and builders
  // handle larger dimensions (here 96) through the same code paths.
  const int n = 96;
  const auto layout = BatchLayout::interleaved(n, kLaneBlock);
  AlignedBuffer<float> data(layout.size_elems());
  generate_spd_batch<float>(layout, data.span());
  std::vector<float> expected(static_cast<std::size_t>(n) * n);
  extract_matrix<float>(layout, std::span<const float>(data.span()), 9,
                        expected);
  ASSERT_EQ(potrf_unblocked(n, expected.data(), n), 0);

  const TileProgram program = build_tile_program(n, 8, Looking::kTop);
  execute_program_lane_block<float>(program, MathMode::kIeee, data.data(),
                                    layout.chunk(), nullptr);
  std::vector<float> got(static_cast<std::size_t>(n) * n);
  extract_matrix<float>(layout, std::span<const float>(data.span()), 9, got);
  for (int j = 0; j < n; j += 7) {
    for (int i = j; i < n; i += 5) {
      const float e = expected[i + static_cast<std::size_t>(j) * n];
      EXPECT_NEAR(got[i + static_cast<std::size_t>(j) * n], e,
                  2e-4f * std::max(1.0f, std::abs(e)));
    }
  }
}

}  // namespace
}  // namespace ibchol
