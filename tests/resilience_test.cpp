// Tests for the resilience layer: shifted-retry recovery, fault injection,
// and the fault-tolerant / resumable sweep driver.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "autotune/journal.hpp"
#include "autotune/sweep.hpp"
#include "core/batch_cholesky.hpp"
#include "cpu/recover.hpp"
#include "layout/convert.hpp"
#include "layout/generate.hpp"
#include "util/aligned_buffer.hpp"
#include "util/fault_inject.hpp"

namespace ibchol {
namespace {

BatchLayout make_layout(LayoutKind kind, int n, std::int64_t batch,
                        int chunk = 32) {
  switch (kind) {
    case LayoutKind::kCanonical: return BatchLayout::canonical(n, batch);
    case LayoutKind::kInterleaved: return BatchLayout::interleaved(n, batch);
    case LayoutKind::kInterleavedChunked:
      return BatchLayout::interleaved_chunked(n, batch, chunk);
  }
  throw Error("bad kind");
}

// The factored triangle of every matrix except those in `skip`, compared
// element-for-element for bit identity.
template <typename T>
void expect_triangles_identical(const BatchLayout& layout,
                                std::span<const T> a, std::span<const T> b,
                                Triangle triangle,
                                const std::vector<std::int64_t>& skip,
                                const char* what) {
  for (std::int64_t m = 0; m < layout.batch(); ++m) {
    if (std::find(skip.begin(), skip.end(), m) != skip.end()) continue;
    for (int j = 0; j < layout.n(); ++j) {
      const int i0 = triangle == Triangle::kLower ? j : 0;
      const int i1 = triangle == Triangle::kLower ? layout.n() : j + 1;
      for (int i = i0; i < i1; ++i) {
        const std::size_t at = layout.index(m, i, j);
        ASSERT_EQ(a[at], b[at])
            << what << ": matrix " << m << " element (" << i << "," << j
            << ")";
      }
    }
  }
}

// ------------------------------------------------------------ recovery ---

TEST(Recover, CleanBatchBitIdenticalToPlainFactorization) {
  const auto layout = BatchLayout::interleaved_chunked(12, 100, 32);
  AlignedBuffer<float> plain(layout.size_elems());
  generate_spd_batch<float>(layout, plain.span());
  AlignedBuffer<float> resilient(layout.size_elems());
  std::copy(plain.begin(), plain.end(), resilient.begin());

  CpuFactorOptions opt;
  const FactorResult res = factor_batch_cpu<float>(layout, plain.span(), opt);
  ASSERT_TRUE(res.ok());

  std::vector<std::int32_t> info(100, -7);
  const RecoveryReport report = factor_batch_recover<float>(
      layout, resilient.span(), opt, {}, info);
  EXPECT_TRUE(report.all_recovered());
  EXPECT_EQ(report.failed, 0);
  EXPECT_EQ(report.nonfinite, 0);
  EXPECT_TRUE(report.matrices.empty());
  for (const auto i : info) EXPECT_EQ(i, 0);
  // A batch that needed no recovery must never be perturbed by the
  // resilient path — down to the last bit, padding included.
  for (std::size_t e = 0; e < layout.size_elems(); ++e) {
    ASSERT_EQ(plain.span()[e], resilient.span()[e]) << "element " << e;
  }
}

struct RecoverCase {
  LayoutKind kind;
  Triangle triangle;
  Unroll unroll;
};

void PrintTo(const RecoverCase& c, std::ostream* os) {
  *os << to_string(c.kind) << "_"
      << (c.triangle == Triangle::kLower ? "lower" : "upper") << "_"
      << to_string(c.unroll);
}

class RecoverGridTest : public ::testing::TestWithParam<RecoverCase> {};

TEST_P(RecoverGridTest, NonSpdMemberRecoveredHealthyOnesUntouched) {
  const RecoverCase c = GetParam();
  const int n = 8;
  const std::int64_t batch = 70;
  const std::int64_t victim = 37;
  const BatchLayout layout = make_layout(c.kind, n, batch);

  AlignedBuffer<double> data(layout.size_elems());
  generate_spd_batch<double>(layout, data.span());
  poison_matrix<double>(layout, data.span(), victim, 3);
  std::vector<double> pristine(data.begin(), data.end());

  // Reference: the same faulted batch through the plain driver.
  AlignedBuffer<double> plain(layout.size_elems());
  std::copy(pristine.begin(), pristine.end(), plain.begin());
  CpuFactorOptions opt;
  opt.triangle = c.triangle;
  opt.unroll = c.unroll;
  std::vector<std::int32_t> plain_info(batch);
  (void)factor_batch_cpu<double>(layout, plain.span(), opt, plain_info);
  ASSERT_GT(plain_info[victim], 0);

  std::vector<std::int32_t> info(batch);
  const RecoveryReport report =
      factor_batch_recover<double>(layout, data.span(), opt, {}, info);

  EXPECT_TRUE(report.all_recovered());
  EXPECT_EQ(report.failed, 1);
  EXPECT_EQ(report.recovered, 1);
  ASSERT_EQ(report.matrices.size(), 1u);
  const MatrixRecovery& rec = report.matrices[0];
  EXPECT_EQ(rec.index, victim);
  EXPECT_EQ(rec.first_info, plain_info[victim]);
  EXPECT_TRUE(rec.recovered);
  EXPECT_GT(rec.shift, 0.0);
  EXPECT_GE(rec.attempts, 1);
  for (std::int64_t b = 0; b < batch; ++b) EXPECT_EQ(info[b], 0);

  // Healthy matrices: bit-identical to the plain factorization.
  expect_triangles_identical<double>(layout, data.span(), plain.span(),
                                     c.triangle, {victim}, "healthy");

  // The recovered factor satisfies L·Lᵀ = A + shift·I (or Uᵀ·U).
  std::vector<double> a(n * n), f(n * n);
  extract_matrix<double>(layout, std::span<const double>(pristine), victim, a);
  extract_matrix<double>(layout, std::span<const double>(data.span()),
                         victim, f);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j <= i; ++j) {
      double sum = 0.0;
      if (c.triangle == Triangle::kLower) {
        for (int k = 0; k <= j; ++k) sum += f[i + k * n] * f[j + k * n];
      } else {
        for (int k = 0; k <= j; ++k) sum += f[k + i * n] * f[k + j * n];
      }
      const double want = a[i + j * n] + (i == j ? rec.shift : 0.0);
      EXPECT_NEAR(sum, want, 1e-8 * std::max(1.0, std::abs(want)))
          << "(" << i << "," << j << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RecoverGridTest,
    ::testing::Values(
        RecoverCase{LayoutKind::kCanonical, Triangle::kLower,
                    Unroll::kPartial},
        RecoverCase{LayoutKind::kInterleaved, Triangle::kLower,
                    Unroll::kPartial},
        RecoverCase{LayoutKind::kInterleavedChunked, Triangle::kLower,
                    Unroll::kPartial},
        RecoverCase{LayoutKind::kInterleavedChunked, Triangle::kUpper,
                    Unroll::kPartial},
        RecoverCase{LayoutKind::kInterleavedChunked, Triangle::kLower,
                    Unroll::kFull},
        RecoverCase{LayoutKind::kInterleaved, Triangle::kUpper,
                    Unroll::kFull}));

TEST(Recover, NonFiniteInputScreenedAndHandedBackUntouched) {
  const auto layout = BatchLayout::interleaved_chunked(8, 64, 32);
  AlignedBuffer<float> data(layout.size_elems());
  generate_spd_batch<float>(layout, data.span());

  const std::vector<MatrixFault> plan = {
      {11, FaultKind::kNaN, 5, 2, 1.0},
      {40, FaultKind::kInf, 3, 0, 1.0},
  };
  inject_faults<float>(layout, data.span(), plan);
  std::vector<float> faulted(data.begin(), data.end());

  std::vector<std::int32_t> info(64);
  const RecoveryReport report =
      factor_batch_recover<float>(layout, data.span(), {}, {}, info);

  EXPECT_EQ(report.nonfinite, 2);
  EXPECT_EQ(report.unrecoverable, 2);
  EXPECT_FALSE(report.all_recovered());
  EXPECT_EQ(info[11], kInfoNonFinite);
  EXPECT_EQ(info[40], kInfoNonFinite);
  ASSERT_EQ(report.matrices.size(), 2u);
  EXPECT_EQ(report.matrices[0].index, 11);
  EXPECT_EQ(report.matrices[1].index, 40);
  EXPECT_EQ(report.matrices[0].first_info, kInfoNonFinite);
  EXPECT_FALSE(report.matrices[0].recovered);
  EXPECT_EQ(report.matrices[0].attempts, 0);

  // Non-finite matrices come back exactly as supplied (a shift cannot
  // repair a NaN, and silently "fixing" corrupt data would hide the bug).
  for (int j = 0; j < 8; ++j) {
    for (int i = 0; i < 8; ++i) {
      for (const std::int64_t b : {std::int64_t{11}, std::int64_t{40}}) {
        const std::size_t at = layout.index(b, i, j);
        const float got = data.span()[at];
        const float want = faulted[at];
        if (std::isnan(want)) {
          EXPECT_TRUE(std::isnan(got));
        } else {
          EXPECT_EQ(got, want);
        }
      }
    }
  }
  // Everyone else factored normally.
  for (std::int64_t b = 0; b < 64; ++b) {
    if (b == 11 || b == 40) continue;
    EXPECT_EQ(info[b], 0) << "b=" << b;
  }
}

TEST(Recover, EscalatingShiftsReachTheNeededMagnitude) {
  // poison_matrix plants an identity with a -1 diagonal entry: recovery
  // needs a shift > 1, i.e. the relative schedule's last rungs. A single
  // tiny shift would never repair it; escalation must.
  const auto layout = BatchLayout::interleaved(6, 40);
  AlignedBuffer<double> data(layout.size_elems());
  generate_spd_batch<double>(layout, data.span());
  poison_matrix<double>(layout, data.span(), 7, 2);

  std::vector<std::int32_t> info(40);
  const RecoveryReport report =
      factor_batch_recover<double>(layout, data.span(), {}, {}, info);
  ASSERT_EQ(report.matrices.size(), 1u);
  EXPECT_TRUE(report.matrices[0].recovered);
  EXPECT_GT(report.matrices[0].shift, 1.0);
  EXPECT_GT(report.matrices[0].attempts, 3);
  EXPECT_EQ(info[7], 0);
}

TEST(Recover, UnrecoverableMatrixKeepsItsFailureCode) {
  const auto layout = BatchLayout::interleaved(6, 40);
  AlignedBuffer<double> data(layout.size_elems());
  generate_spd_batch<double>(layout, data.span());
  poison_matrix<double>(layout, data.span(), 3, 4);

  RecoveryOptions ropt;
  ropt.relative = false;
  ropt.shift0 = 1e-9;  // far below the needed shift of ~1
  ropt.growth = 2.0;
  ropt.max_attempts = 3;
  std::vector<std::int32_t> info(40);
  const RecoveryReport report =
      factor_batch_recover<double>(layout, data.span(), {}, ropt, info);

  EXPECT_EQ(report.unrecoverable, 1);
  EXPECT_EQ(report.recovered, 0);
  ASSERT_EQ(report.matrices.size(), 1u);
  EXPECT_FALSE(report.matrices[0].recovered);
  EXPECT_EQ(report.matrices[0].attempts, 3);
  EXPECT_EQ(info[3], 5);  // the original 1-based failing column survives
}

TEST(Recover, MaxAttemptsZeroScreensButNeverRetries) {
  const auto layout = BatchLayout::interleaved(6, 40);
  AlignedBuffer<double> data(layout.size_elems());
  generate_spd_batch<double>(layout, data.span());
  poison_matrix<double>(layout, data.span(), 3, 1);

  RecoveryOptions ropt;
  ropt.max_attempts = 0;
  std::vector<std::int32_t> info(40);
  const RecoveryReport report =
      factor_batch_recover<double>(layout, data.span(), {}, ropt, info);
  EXPECT_EQ(report.failed, 1);
  EXPECT_EQ(report.recovered, 0);
  EXPECT_EQ(report.matrices[0].attempts, 0);
  EXPECT_GT(info[3], 0);
}

TEST(Recover, FacadeRecoversThroughEveryExecutorPath) {
  // factorize_recover must behave identically through the facade's
  // prebuilt-tile-program path (partial unroll) and fused path (full).
  for (const Unroll unroll : {Unroll::kPartial, Unroll::kFull}) {
    TuningParams p = recommended_params(8);
    p.unroll = unroll;
    p.nb = unroll == Unroll::kPartial ? 4 : 8;
    const BatchLayout layout = BatchCholesky::make_layout(8, 90, p);
    AlignedBuffer<float> data(layout.size_elems());
    generate_spd_batch<float>(layout, data.span());
    poison_matrix<float>(layout, data.span(), 60, 2);

    const BatchCholesky chol(layout, p);
    std::vector<std::int32_t> info(90);
    const RecoveryReport report =
        chol.factorize_recover<float>(data.span(), {}, info);
    EXPECT_TRUE(report.all_recovered()) << to_string(unroll);
    EXPECT_EQ(report.recovered, 1) << to_string(unroll);
    EXPECT_EQ(info[60], 0) << to_string(unroll);
  }
}

TEST(Recover, ScreenNonFiniteFlagsOnlyOffenders) {
  const auto layout = BatchLayout::interleaved(5, 50);
  AlignedBuffer<float> data(layout.size_elems());
  generate_spd_batch<float>(layout, data.span());
  const std::vector<MatrixFault> plan = {{20, FaultKind::kNaN, 4, 1, 1.0}};
  inject_faults<float>(layout, data.span(), plan);

  std::vector<std::int32_t> info(50, 0);
  const std::int64_t count = screen_nonfinite<float>(
      layout, data.span(), Triangle::kLower, info);
  EXPECT_EQ(count, 1);
  for (std::int64_t b = 0; b < 50; ++b) {
    EXPECT_EQ(info[b], b == 20 ? kInfoNonFinite : 0) << "b=" << b;
  }
}

// -------------------------------------------------------- executor grid ---

struct ExecCase {
  LayoutKind kind;
  CpuExec exec;
  Triangle triangle;
  Unroll unroll;
};

void PrintTo(const ExecCase& c, std::ostream* os) {
  *os << to_string(c.kind) << "_" << to_string(c.exec) << "_"
      << (c.triangle == Triangle::kLower ? "lower" : "upper") << "_"
      << to_string(c.unroll);
}

class FaultGridTest : public ::testing::TestWithParam<ExecCase> {};

TEST_P(FaultGridTest, InjectedFaultsIsolatedAndInfoDeterministic) {
  const ExecCase c = GetParam();
  const int n = 8;
  const std::int64_t batch = 96;
  const BatchLayout layout = make_layout(c.kind, n, batch);

  FaultPlanOptions fopt;
  fopt.seed = 99;
  fopt.fault_rate = 0.08;
  const std::vector<MatrixFault> plan = plan_faults(batch, n, fopt);
  ASSERT_FALSE(plan.empty());

  AlignedBuffer<double> clean(layout.size_elems());
  generate_spd_batch<double>(layout, clean.span());
  AlignedBuffer<double> faulted(layout.size_elems());
  std::copy(clean.begin(), clean.end(), faulted.begin());
  inject_faults<double>(layout, faulted.span(), plan);

  CpuFactorOptions opt;
  opt.exec = c.exec;
  opt.triangle = c.triangle;
  opt.unroll = c.unroll;
  opt.nb = 4;
  std::vector<std::int32_t> clean_info(batch), fault_info(batch);
  const FactorResult clean_res =
      factor_batch_cpu<double>(layout, clean.span(), opt, clean_info);
  const FactorResult fault_res =
      factor_batch_cpu<double>(layout, faulted.span(), opt, fault_info);

  ASSERT_TRUE(clean_res.ok());
  EXPECT_EQ(fault_res.failed_count,
            static_cast<std::int64_t>(plan.size()));

  // Every faulted matrix fails at a deterministic column: the poisoned
  // pivot, or the row of the off-diagonal NaN/Inf (first pivot whose
  // column-dot crosses the corruption). This is what makes `info`
  // executor- and layout-independent.
  std::vector<std::int64_t> victims;
  for (const MatrixFault& f : plan) {
    victims.push_back(f.index);
    EXPECT_EQ(fault_info[f.index], f.row + 1)
        << "victim " << f.index << " kind " << to_string(f.kind);
  }
  for (std::int64_t b = 0; b < batch; ++b) {
    if (std::find(victims.begin(), victims.end(), b) == victims.end()) {
      EXPECT_EQ(fault_info[b], 0) << "b=" << b;
    }
  }

  // Neighbors of faulted matrices — including lane-block mates processed
  // in the same SIMD sweep — must come out bit-identical to the unfaulted
  // run: corruption never leaks across the batch dimension.
  expect_triangles_identical<double>(layout, faulted.span(), clean.span(),
                                     c.triangle, victims, "neighbor");
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FaultGridTest,
    ::testing::Values(
        ExecCase{LayoutKind::kCanonical, CpuExec::kSpecialized,
                 Triangle::kLower, Unroll::kPartial},
        ExecCase{LayoutKind::kInterleaved, CpuExec::kInterpreter,
                 Triangle::kLower, Unroll::kPartial},
        ExecCase{LayoutKind::kInterleaved, CpuExec::kSpecialized,
                 Triangle::kLower, Unroll::kPartial},
        ExecCase{LayoutKind::kInterleavedChunked, CpuExec::kInterpreter,
                 Triangle::kLower, Unroll::kPartial},
        ExecCase{LayoutKind::kInterleavedChunked, CpuExec::kSpecialized,
                 Triangle::kLower, Unroll::kPartial},
        ExecCase{LayoutKind::kInterleavedChunked, CpuExec::kSpecialized,
                 Triangle::kUpper, Unroll::kPartial},
        ExecCase{LayoutKind::kInterleavedChunked, CpuExec::kInterpreter,
                 Triangle::kUpper, Unroll::kPartial},
        ExecCase{LayoutKind::kInterleavedChunked, CpuExec::kSpecialized,
                 Triangle::kLower, Unroll::kFull},
        ExecCase{LayoutKind::kInterleaved, CpuExec::kSpecialized,
                 Triangle::kUpper, Unroll::kFull}));

TEST(FaultGrid, InfoAgreesAcrossExecutorsAndLayouts) {
  // The same faulted batch, canonically generated then converted into each
  // layout, must report the same per-matrix info under every executor.
  const int n = 8;
  const std::int64_t batch = 96;
  const auto canon = BatchLayout::canonical(n, batch);
  AlignedBuffer<double> base(canon.size_elems());
  generate_spd_batch<double>(canon, base.span());
  FaultPlanOptions fopt;
  fopt.seed = 7;
  fopt.fault_rate = 0.1;
  const auto plan = plan_faults(batch, n, fopt);
  ASSERT_FALSE(plan.empty());
  inject_faults<double>(canon, base.span(), plan);

  std::vector<std::vector<std::int32_t>> infos;
  for (const LayoutKind kind :
       {LayoutKind::kCanonical, LayoutKind::kInterleaved,
        LayoutKind::kInterleavedChunked}) {
    const BatchLayout layout = make_layout(kind, n, batch);
    AlignedBuffer<double> data(layout.size_elems());
    convert_layout<double>(canon, base.span(), layout, data.span());
    fill_padding_identity<double>(layout, data.span());
    for (const CpuExec exec :
         {CpuExec::kInterpreter, CpuExec::kSpecialized}) {
      AlignedBuffer<double> work(layout.size_elems());
      std::copy(data.begin(), data.end(), work.begin());
      CpuFactorOptions opt;
      opt.exec = exec;
      opt.nb = 4;
      std::vector<std::int32_t> info(batch);
      (void)factor_batch_cpu<double>(layout, work.span(), opt, info);
      infos.push_back(std::move(info));
    }
  }
  for (std::size_t i = 1; i < infos.size(); ++i) {
    EXPECT_EQ(infos[i], infos[0]) << "configuration " << i;
  }
}

// ------------------------------------------------------- fault planning ---

TEST(FaultPlan, DeterministicAndSeedSensitive) {
  FaultPlanOptions opt;
  opt.fault_rate = 0.2;
  const auto a = plan_faults(500, 8, opt);
  const auto b = plan_faults(500, 8, opt);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].index, b[i].index);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].row, b[i].row);
    EXPECT_EQ(a[i].col, b[i].col);
  }
  opt.seed = 77;
  const auto d = plan_faults(500, 8, opt);
  bool differs = d.size() != a.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a[i].index != d[i].index;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultPlan, ValidatesAndBounds) {
  FaultPlanOptions opt;
  opt.fault_rate = 0.0;
  EXPECT_TRUE(plan_faults(100, 8, opt).empty());
  opt.fault_rate = 1.0;
  EXPECT_EQ(plan_faults(100, 8, opt).size(), 100u);
  for (const auto& f : plan_faults(100, 8, opt)) {
    EXPECT_GE(f.row, 0);
    EXPECT_LT(f.row, 8);
    EXPECT_GE(f.col, 0);
    EXPECT_LT(f.col, 8);
    if (f.kind == FaultKind::kNegativePivot) {
      EXPECT_EQ(f.row, f.col);
    } else {
      EXPECT_GT(f.row, f.col);  // strictly off-diagonal
    }
  }
  opt.negative_pivot = opt.nan = opt.inf = false;
  EXPECT_THROW((void)plan_faults(100, 8, opt), Error);
  opt.negative_pivot = true;
  opt.fault_rate = 1.5;
  EXPECT_THROW((void)plan_faults(100, 8, opt), Error);
}

TEST(FaultPlan, InjectionKeepsMatricesSymmetric) {
  const auto layout = BatchLayout::interleaved(8, 64);
  AlignedBuffer<double> data(layout.size_elems());
  generate_spd_batch<double>(layout, data.span());
  FaultPlanOptions opt;
  opt.fault_rate = 0.3;
  const auto plan = plan_faults(64, 8, opt);
  inject_faults<double>(layout, data.span(), plan);
  for (std::int64_t b = 0; b < 64; ++b) {
    for (int j = 0; j < 8; ++j) {
      for (int i = j + 1; i < 8; ++i) {
        const double lo = data.span()[layout.index(b, i, j)];
        const double up = data.span()[layout.index(b, j, i)];
        if (std::isnan(lo)) {
          EXPECT_TRUE(std::isnan(up));
        } else {
          EXPECT_EQ(lo, up) << "b=" << b;
        }
      }
    }
  }
}

// ----------------------------------------------------------- solve guard --

TEST(SolveGuard, FailedMatricesKeepTheirRhs) {
  TuningParams p = recommended_params(8);
  const BatchLayout layout = BatchCholesky::make_layout(8, 80, p);
  AlignedBuffer<float> data(layout.size_elems());
  generate_spd_batch<float>(layout, data.span());
  poison_matrix<float>(layout, data.span(), 25, 1);

  const BatchCholesky chol(layout, p);
  std::vector<std::int32_t> info(80);
  const FactorResult res = chol.factorize<float>(data.span(), info);
  ASSERT_FALSE(res.ok());
  ASSERT_GT(info[25], 0);

  const auto vlayout = BatchVectorLayout::matching(layout);
  AlignedBuffer<float> rhs(vlayout.size_elems());
  for (std::size_t e = 0; e < rhs.size(); ++e) {
    rhs.span()[e] = static_cast<float>(e % 13) + 0.5f;
  }
  std::vector<float> given(rhs.begin(), rhs.end());

  chol.solve<float>(data.span(), vlayout, rhs.span(), info);

  // The failed matrix's rhs is untouched instead of NaN back-substitution
  // garbage; every healthy matrix got a finite solution.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(rhs.span()[vlayout.index(25, i)],
              given[vlayout.index(25, i)]);
  }
  for (std::int64_t b = 0; b < 80; ++b) {
    if (b == 25) continue;
    for (int i = 0; i < 8; ++i) {
      EXPECT_TRUE(std::isfinite(rhs.span()[vlayout.index(b, i)]))
          << "b=" << b;
    }
  }

  // Without the info span the old behavior (NaNs) remains, proving the
  // guard is what isolates the failure.
  AlignedBuffer<float> unguarded(vlayout.size_elems());
  std::copy(given.begin(), given.end(), unguarded.begin());
  chol.solve<float>(data.span(), vlayout, unguarded.span());
  bool any_nan = false;
  for (int i = 0; i < 8; ++i) {
    any_nan = any_nan || std::isnan(unguarded.span()[vlayout.index(25, i)]);
  }
  EXPECT_TRUE(any_nan);
}

TEST(SolveGuard, MultiRhsGuardMatchesVectorGuard) {
  TuningParams p = recommended_params(6);
  const BatchLayout layout = BatchCholesky::make_layout(6, 40, p);
  AlignedBuffer<double> data(layout.size_elems());
  generate_spd_batch<double>(layout, data.span());
  poison_matrix<double>(layout, data.span(), 10, 2);

  const BatchCholesky chol(layout, p);
  std::vector<std::int32_t> info(40);
  (void)chol.factorize<double>(data.span(), info);
  ASSERT_GT(info[10], 0);

  const auto rlayout = BatchRectLayout::matching(layout, 6, 3);
  AlignedBuffer<double> rhs(rlayout.size_elems());
  for (std::size_t e = 0; e < rhs.size(); ++e) {
    rhs.span()[e] = static_cast<double>(e % 7) - 2.0;
  }
  std::vector<double> given(rhs.begin(), rhs.end());
  chol.solve_multi<double>(data.span(), rlayout, rhs.span(), info);
  for (int j = 0; j < 3; ++j) {
    for (int i = 0; i < 6; ++i) {
      EXPECT_EQ(rhs.span()[rlayout.index(10, i, j)],
                given[rlayout.index(10, i, j)]);
    }
  }
  for (std::int64_t b = 0; b < 40; ++b) {
    if (b == 10) continue;
    for (int j = 0; j < 3; ++j) {
      for (int i = 0; i < 6; ++i) {
        EXPECT_TRUE(std::isfinite(rhs.span()[rlayout.index(b, i, j)]));
      }
    }
  }
}

// ------------------------------------------------------- sweep resilience --

class ResilientSweepTest : public ::testing::Test {
 protected:
  static SweepOptions small_options() {
    SweepOptions opt;
    opt.sizes = {8};
    opt.batch = 4096;
    opt.space.tile_sizes = {1, 4};
    opt.space.chunk_sizes = {32, 64};
    return opt;
  }

  static std::string temp_path(const char* name) {
    return ::testing::TempDir() + "/ibchol_" + name + "_" +
           std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
           ".jsonl";
  }
};

TEST_F(ResilientSweepTest, TransientFaultRetriedAndRecorded) {
  ModelEvaluator model(KernelModel(GpuSpec::p100()), 0.05);
  FlakyEvaluator flaky(model);
  SweepOptions opt = small_options();
  const auto space = enumerate_space(8, opt.space);
  ASSERT_GE(space.size(), 2u);
  flaky.fail_point(8, space[1], /*times=*/2);
  opt.max_retries = 2;

  const SweepDataset ds = run_sweep(flaky, opt);
  ASSERT_EQ(ds.size(), space.size());
  const SweepRecord& hit = ds.records()[1];
  EXPECT_EQ(hit.params, space[1]);
  EXPECT_EQ(hit.attempts, 3);
  EXPECT_FALSE(hit.failed);
  EXPECT_TRUE(std::isfinite(hit.seconds));
  // Every other point answered first try.
  for (std::size_t i = 0; i < ds.size(); ++i) {
    if (i != 1) EXPECT_EQ(ds.records()[i].attempts, 1) << i;
  }
  EXPECT_EQ(flaky.faults_fired(), 2);

  // The retried value equals an unfaulted evaluation: retries re-ask the
  // evaluator, they do not fabricate data.
  ModelEvaluator fresh(KernelModel(GpuSpec::p100()), 0.05);
  EXPECT_EQ(hit.seconds, fresh.seconds(8, opt.batch, space[1]));
}

TEST_F(ResilientSweepTest, ExhaustedRetriesRecordedAsFailedPoint) {
  ModelEvaluator model(KernelModel(GpuSpec::p100()));
  FlakyEvaluator flaky(model);
  SweepOptions opt = small_options();
  const auto space = enumerate_space(8, opt.space);
  flaky.fail_point(8, space[0], /*times=*/100);
  opt.max_retries = 1;

  const SweepDataset ds = run_sweep(flaky, opt);
  ASSERT_EQ(ds.size(), space.size());
  const SweepRecord& dead = ds.records()[0];
  EXPECT_TRUE(dead.failed);
  EXPECT_EQ(dead.attempts, 2);
  EXPECT_TRUE(std::isnan(dead.seconds));
  EXPECT_TRUE(std::isnan(dead.gflops));

  // The failed point neither aborts the sweep nor poisons the reducers.
  const auto best = ds.best(8);
  ASSERT_TRUE(best.has_value());
  EXPECT_FALSE(best->failed);
  const auto winners = select_winners(ds);
  ASSERT_EQ(winners.count(8), 1u);
  EXPECT_FALSE(winners.at(8) == space[0] &&
               ds.records()[0].failed);  // winner is a real measurement
}

TEST_F(ResilientSweepTest, NaNRecordSeenFirstCannotPoisonArgmax) {
  // Regression shape: NaN compares false with everything, so a NaN-gflops
  // record encountered first used to win best() forever.
  SweepDataset ds;
  SweepRecord bad;
  bad.n = 8;
  bad.batch = 128;
  bad.seconds = std::nan("");
  bad.gflops = std::nan("");
  bad.failed = true;
  ds.add(bad);
  SweepRecord good = bad;
  good.failed = false;
  good.seconds = 1e-3;
  good.gflops = 42.0;
  good.params.nb = 2;
  ds.add(good);

  const auto best = ds.best(8);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->gflops, 42.0);
  const auto by_n = ds.best_by_n();
  ASSERT_EQ(by_n.count(8), 1u);
  EXPECT_EQ(by_n.at(8).gflops, 42.0);
  EXPECT_EQ(select_winners(ds).at(8).nb, 2);
}

TEST_F(ResilientSweepTest, DeadlineTreatsStallAsFailure) {
  ModelEvaluator model(KernelModel(GpuSpec::p100()));
  FlakyEvaluator flaky(model);
  SweepOptions opt = small_options();
  const auto space = enumerate_space(8, opt.space);
  // One evaluation stalls 500 ms against a 100 ms budget, then behaves.
  // The margins are wide so a loaded machine cannot push a healthy model
  // evaluation over the deadline.
  flaky.stall_point(8, space[0], /*stall_seconds=*/0.5, /*times=*/1);
  opt.deadline_seconds = 0.1;
  opt.max_retries = 1;
  opt.num_threads = 1;

  const SweepDataset ds = run_sweep(flaky, opt);
  EXPECT_EQ(ds.records()[0].attempts, 2);
  EXPECT_FALSE(ds.records()[0].failed);
}

// ------------------------------------------------------------- journal ----

TEST(Journal, LineRoundTripsBitIdentically) {
  SweepRecord r;
  r.n = 24;
  r.batch = 16384;
  r.params.nb = 3;
  r.params.looking = Looking::kLeft;
  r.params.chunked = false;
  r.params.chunk_size = 128;
  r.params.unroll = Unroll::kFull;
  r.params.math = MathMode::kFastMath;
  r.params.prefer_shared = true;
  r.params.exec = CpuExec::kVectorized;
  r.params.isa = SimdIsa::kAvx2;
  r.seconds = 1.0 / 3.0 * 1e-5;  // not representable in short decimal
  r.gflops = 123.45678901234567;
  r.attempts = 4;
  r.failed = false;

  const auto back = parse_journal_line(journal_line(r));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->n, r.n);
  EXPECT_EQ(back->batch, r.batch);
  EXPECT_EQ(back->params, r.params);
  EXPECT_EQ(back->seconds, r.seconds);  // exact, not NEAR — %.17g round-trip
  EXPECT_EQ(back->gflops, r.gflops);
  EXPECT_EQ(back->attempts, r.attempts);
  EXPECT_EQ(back->failed, r.failed);

  // Journals written before the vectorized executor carry no "isa" field;
  // such lines must still parse, defaulting the tier to kAuto.
  std::string old_line = journal_line(r);
  const std::size_t at = old_line.find(",\"isa\":\"avx2\"");
  ASSERT_NE(at, std::string::npos);
  old_line.erase(at, std::string(",\"isa\":\"avx2\"").size());
  const auto old_back = parse_journal_line(old_line);
  ASSERT_TRUE(old_back.has_value());
  EXPECT_EQ(old_back->params.isa, SimdIsa::kAuto);
  EXPECT_EQ(old_back->params.exec, CpuExec::kVectorized);
}

TEST(Journal, FailedRecordSerializesNaNAsNull) {
  SweepRecord r;
  r.n = 8;
  r.batch = 64;
  r.seconds = std::nan("");
  r.gflops = std::nan("");
  r.failed = true;
  r.attempts = 3;
  const std::string line = journal_line(r);
  EXPECT_NE(line.find("\"seconds\":null"), std::string::npos);
  const auto back = parse_journal_line(line);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(std::isnan(back->seconds));
  EXPECT_TRUE(back->failed);
  EXPECT_EQ(back->attempts, 3);
}

TEST(Journal, TruncatedAndMalformedLinesSkipped) {
  SweepRecord r;
  r.n = 8;
  r.batch = 64;
  r.seconds = 1e-4;
  r.gflops = 10.0;
  const std::string good = journal_line(r);
  EXPECT_FALSE(parse_journal_line(good.substr(0, good.size() / 2))
                   .has_value());
  EXPECT_FALSE(parse_journal_line("").has_value());
  EXPECT_FALSE(parse_journal_line("not json at all").has_value());

  const std::string path = ::testing::TempDir() + "/ibchol_trunc.jsonl";
  {
    std::ofstream out(path, std::ios::trunc);
    out << good << "\n";
    out << good.substr(0, good.size() - 7);  // crash mid-write
  }
  const auto records = read_journal(path);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].seconds, r.seconds);
  std::remove(path.c_str());
}

TEST(Journal, MissingFileIsEmptyNotFatal) {
  EXPECT_TRUE(read_journal("/nonexistent/ibchol/journal.jsonl").empty());
}

TEST(Journal, AppendAfterTornLineStartsFresh) {
  // A crash can leave the file ending in a torn fragment with no newline.
  // The writer must not glue the next record onto it — the concatenation
  // would parse as one line whose key scans read the fragment's values.
  SweepRecord r;
  r.n = 8;
  r.batch = 64;
  r.params.nb = 4;
  r.seconds = 1e-4;
  r.gflops = 10.0;
  const std::string good = journal_line(r);

  const std::string path = ::testing::TempDir() + "/ibchol_torn_append.jsonl";
  {
    std::ofstream out(path, std::ios::trunc);
    out << good << "\n";
    out << good.substr(0, good.size() / 2);  // crash mid-write, no newline
  }
  {
    JournalWriter writer(path);
    writer.append(r);
  }
  const auto records = read_journal(path);
  ASSERT_EQ(records.size(), 2u);  // torn fragment skipped, append intact
  EXPECT_EQ(records[1].params, r.params);
  EXPECT_EQ(records[1].seconds, r.seconds);
  std::remove(path.c_str());
}

// -------------------------------------------------------------- resume ----

TEST_F(ResilientSweepTest, ResumedSweepByteIdenticalToUninterrupted) {
  const std::string journal = temp_path("resume");
  std::remove(journal.c_str());

  // Reference: one uninterrupted run (jittered model, so values are
  // nontrivial but deterministic per point).
  ModelEvaluator ref_model(KernelModel(GpuSpec::p100()), 0.05);
  SweepOptions opt = small_options();
  const SweepDataset want = run_sweep(ref_model, opt);
  ASSERT_GE(want.size(), 4u);

  // First run journals everything; simulate a crash at ~50% by truncating
  // the journal to its first half.
  {
    ModelEvaluator model(KernelModel(GpuSpec::p100()), 0.05);
    SweepOptions jopt = opt;
    jopt.journal_path = journal;
    (void)run_sweep(model, jopt);
  }
  std::vector<std::string> lines;
  {
    std::ifstream in(journal);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), want.size());
  const std::size_t keep = lines.size() / 2;
  {
    std::ofstream out(journal, std::ios::trunc);
    for (std::size_t i = 0; i < keep; ++i) out << lines[i] << "\n";
    out << lines[keep].substr(0, lines[keep].size() / 2);  // torn last line
  }

  // Resume: only the missing points are evaluated, and the final dataset —
  // values and order — matches the uninterrupted run exactly.
  ModelEvaluator model(KernelModel(GpuSpec::p100()), 0.05);
  FlakyEvaluator counting(model);
  SweepOptions ropt = opt;
  ropt.resume_from = journal;
  ropt.journal_path = journal;
  std::vector<std::size_t> dones;
  ropt.progress = [&](std::size_t done, std::size_t) {
    dones.push_back(done);
  };
  const SweepDataset got = run_sweep(counting, ropt);

  EXPECT_EQ(counting.calls(),
            static_cast<std::int64_t>(want.size() - keep));
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    const SweepRecord& a = want.records()[i];
    const SweepRecord& b = got.records()[i];
    EXPECT_EQ(a.n, b.n) << i;
    EXPECT_EQ(a.batch, b.batch) << i;
    EXPECT_EQ(a.params, b.params) << i;
    EXPECT_EQ(a.seconds, b.seconds) << i;  // bit-identical
    EXPECT_EQ(a.gflops, b.gflops) << i;
    EXPECT_EQ(a.failed, b.failed) << i;
  }
  // Resumed points are pre-counted: progress starts past them and ends at
  // total.
  ASSERT_EQ(dones.size(), want.size() - keep);
  EXPECT_EQ(dones.front(), keep + 1);
  EXPECT_EQ(dones.back(), want.size());

  // The continued journal now covers every point: a second resume
  // re-evaluates nothing.
  ModelEvaluator model2(KernelModel(GpuSpec::p100()), 0.05);
  FlakyEvaluator counting2(model2);
  const SweepDataset again = run_sweep(counting2, ropt);
  EXPECT_EQ(counting2.calls(), 0);
  ASSERT_EQ(again.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(again.records()[i].seconds, want.records()[i].seconds) << i;
  }
  std::remove(journal.c_str());
}

TEST_F(ResilientSweepTest, StaleJournalEntriesAreIgnored) {
  const std::string journal = temp_path("stale");
  {
    // A journal from some other sweep: wrong n, wrong batch.
    SweepRecord foreign;
    foreign.n = 63;
    foreign.batch = 999;
    foreign.seconds = 1.0;
    foreign.gflops = 1.0;
    std::ofstream out(journal, std::ios::trunc);
    out << journal_line(foreign) << "\n";
  }
  ModelEvaluator model(KernelModel(GpuSpec::p100()));
  FlakyEvaluator counting(model);
  SweepOptions opt = small_options();
  opt.resume_from = journal;
  const SweepDataset ds = run_sweep(counting, opt);
  // Nothing matched: every point was evaluated fresh.
  EXPECT_EQ(counting.calls(), static_cast<std::int64_t>(ds.size()));
  for (const auto& r : ds.records()) {
    EXPECT_NE(r.n, 63);
    EXPECT_GT(r.gflops, 0.0);
  }
  std::remove(journal.c_str());
}

TEST_F(ResilientSweepTest, ParallelResumeMatchesSerial) {
  const std::string journal = temp_path("par");
  std::remove(journal.c_str());
  SweepOptions opt = small_options();
  {
    ModelEvaluator model(KernelModel(GpuSpec::p100()), 0.05);
    SweepOptions jopt = opt;
    jopt.journal_path = journal;
    jopt.num_threads = 1;
    (void)run_sweep(model, jopt);
  }
  // Drop the second half of the journal, then resume with 4 threads.
  std::vector<std::string> lines;
  {
    std::ifstream in(journal);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  {
    std::ofstream out(journal, std::ios::trunc);
    for (std::size_t i = 0; i < lines.size() / 2; ++i) {
      out << lines[i] << "\n";
    }
  }
  ModelEvaluator serial_model(KernelModel(GpuSpec::p100()), 0.05);
  SweepOptions sopt = opt;
  sopt.num_threads = 1;
  const SweepDataset serial = run_sweep(serial_model, sopt);

  ModelEvaluator par_model(KernelModel(GpuSpec::p100()), 0.05);
  SweepOptions popt = opt;
  popt.resume_from = journal;
  popt.num_threads = 4;
  const SweepDataset parallel = run_sweep(par_model, popt);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(parallel.records()[i].seconds, serial.records()[i].seconds)
        << i;
  }
  std::remove(journal.c_str());
}

}  // namespace
}  // namespace ibchol
