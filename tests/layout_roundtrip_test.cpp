// Property-based round-trip tests of the layout conversions.
//
// The conversions are pure permutations of the matrix elements (plus
// identity-filled padding), so any chain of conversions that returns to
// the canonical layout must reproduce the original buffer BYTE FOR BYTE —
// no arithmetic touches the values. The tests draw ~200 random
// (n, batch, chunk) shapes from a fixed seed, deliberately including
// batches that are not multiples of the chunk (padding tails), and push
// random bit patterns through every conversion chain:
//
//   canonical -> interleaved -> canonical
//   canonical -> chunked     -> canonical
//   canonical -> interleaved -> chunked     -> canonical
//   canonical -> chunked     -> interleaved -> canonical
//
// A second property pins the padding contract the factorization paths rely
// on: every padding lane of an interleaved destination holds an exact
// identity matrix (padding must never produce a spurious pivot failure).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "layout/convert.hpp"
#include "layout/layout.hpp"
#include "util/rng.hpp"

namespace ibchol {
namespace {

// Random shape: n in [1, 64], batch in [1, 400], chunk a multiple of the
// warp size in [32, 160]. Every few draws the batch is snapped to
// chunk*k + 1 / chunk*k - 1 so the padding-tail corner is always exercised
// even if the uniform draws happen to miss it.
struct Shape {
  int n;
  std::int64_t batch;
  int chunk;
};

Shape draw_shape(Xoshiro256& rng, int case_idx) {
  Shape s;
  s.n = 1 + static_cast<int>(rng.uniform_index(64));
  s.batch = 1 + static_cast<std::int64_t>(rng.uniform_index(400));
  s.chunk = kWarpSize * (1 + static_cast<int>(rng.uniform_index(5)));
  if (case_idx % 5 == 3) s.batch = s.chunk + 1;          // one-lane tail
  if (case_idx % 5 == 4 && s.chunk > 1) s.batch = 2 * s.chunk - 1;
  return s;
}

template <typename T>
std::vector<T> random_batch(const BatchLayout& layout, Xoshiro256& rng) {
  std::vector<T> data(layout.size_elems());
  for (T& v : data) v = static_cast<T>(rng.uniform(-100.0, 100.0));
  return data;
}

// Converts `src` (canonical) through every layout of `hops` and back to
// canonical, returning the final canonical buffer.
template <typename T>
std::vector<T> round_trip(const BatchLayout& canon, const std::vector<T>& src,
                          const std::vector<BatchLayout>& hops) {
  const BatchLayout* from = &canon;
  std::vector<T> cur = src;
  for (const BatchLayout& to : hops) {
    std::vector<T> next(to.size_elems());
    convert_layout<T>(*from, std::span<const T>(cur), to,
                      std::span<T>(next));
    cur = std::move(next);
    from = &to;
  }
  std::vector<T> back(canon.size_elems());
  convert_layout<T>(*from, std::span<const T>(cur), canon,
                    std::span<T>(back));
  return back;
}

template <typename T>
void expect_bytes_equal(const std::vector<T>& a, const std::vector<T>& b,
                        const Shape& s, const char* chain) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(T)), 0)
      << chain << " round trip corrupted bytes at n=" << s.n
      << " batch=" << s.batch << " chunk=" << s.chunk;
}

template <typename T>
void run_round_trips(std::uint64_t seed, int cases) {
  Xoshiro256 rng(seed);
  for (int c = 0; c < cases; ++c) {
    const Shape s = draw_shape(rng, c);
    const BatchLayout canon = BatchLayout::canonical(s.n, s.batch);
    const BatchLayout simple = BatchLayout::interleaved(s.n, s.batch);
    const BatchLayout chunked =
        BatchLayout::interleaved_chunked(s.n, s.batch, s.chunk);
    const std::vector<T> src = random_batch<T>(canon, rng);

    expect_bytes_equal(src, round_trip(canon, src, {simple}), s,
                       "canonical->interleaved");
    expect_bytes_equal(src, round_trip(canon, src, {chunked}), s,
                       "canonical->chunked");
    expect_bytes_equal(src, round_trip(canon, src, {simple, chunked}), s,
                       "canonical->interleaved->chunked");
    expect_bytes_equal(src, round_trip(canon, src, {chunked, simple}), s,
                       "canonical->chunked->interleaved");
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(LayoutRoundTrip, RandomShapesFloat) {
  run_round_trips<float>(0xC0FFEE0001ULL, 120);
}

TEST(LayoutRoundTrip, RandomShapesDouble) {
  run_round_trips<double>(0xC0FFEE0002ULL, 80);
}

// Conversions into an interleaved layout must leave identity matrices in
// every padding lane — the factorization paths factor padding lanes
// unconditionally and rely on them never failing.
TEST(LayoutRoundTrip, PaddingLanesAreIdentity) {
  Xoshiro256 rng(0xC0FFEE0003ULL);
  for (int c = 0; c < 40; ++c) {
    const Shape s = draw_shape(rng, c);
    const BatchLayout canon = BatchLayout::canonical(s.n, s.batch);
    const BatchLayout chunked =
        BatchLayout::interleaved_chunked(s.n, s.batch, s.chunk);
    if (chunked.padded_batch() == s.batch) continue;  // no padding to check
    const std::vector<float> src = random_batch<float>(canon, rng);
    std::vector<float> dst(chunked.size_elems());
    convert_layout<float>(canon, std::span<const float>(src), chunked,
                          std::span<float>(dst));
    for (std::int64_t b = s.batch; b < chunked.padded_batch(); ++b) {
      for (int j = 0; j < s.n; ++j) {
        for (int i = 0; i < s.n; ++i) {
          ASSERT_EQ(dst[chunked.index(b, i, j)], i == j ? 1.0f : 0.0f)
              << "padding lane " << b << " element (" << i << "," << j
              << ") at n=" << s.n << " batch=" << s.batch
              << " chunk=" << s.chunk;
        }
      }
    }
  }
}

}  // namespace
}  // namespace ibchol
