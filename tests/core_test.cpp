// Tests for the public BatchCholesky facade and tuning-parameter plumbing.
#include <gtest/gtest.h>

#include <vector>

#include "core/batch_cholesky.hpp"
#include "cpu/reference.hpp"
#include "layout/convert.hpp"
#include "layout/generate.hpp"
#include "util/aligned_buffer.hpp"

namespace ibchol {
namespace {

// ------------------------------------------------------- TuningParams ----

TEST(TuningParams, ValidationRules) {
  TuningParams p;
  p.validate(8);  // defaults are valid
  p.nb = 0;
  EXPECT_THROW(p.validate(8), Error);
  p.nb = 4;
  p.chunk_size = 48;  // not a warp multiple
  EXPECT_THROW(p.validate(8), Error);
  // Non-chunked layouts still use chunk_size as the CPU pipeline's
  // pack-scratch lane count, so the warp-multiple rule stands...
  p.chunked = false;
  EXPECT_THROW(p.validate(8), Error);
  // ...but 0 (automatic sizing) and warp multiples are valid.
  p.chunk_size = 0;
  p.validate(8);
  p.chunk_size = 64;
  p.validate(8);
}

TEST(TuningParams, EffectiveNbClamps) {
  TuningParams p;
  p.nb = 8;
  EXPECT_EQ(p.effective_nb(3), 3);
  EXPECT_EQ(p.effective_nb(50), 8);
}

TEST(TuningParams, ThreadsPerBlock) {
  TuningParams p;
  p.chunked = true;
  p.chunk_size = 256;
  EXPECT_EQ(p.threads_per_block(), 256);
  p.chunked = false;
  EXPECT_EQ(p.threads_per_block(), 128);
}

TEST(TuningParams, KeyIsStableAndDistinct) {
  TuningParams a, b;
  EXPECT_EQ(a.key(), b.key());
  b.looking = Looking::kRight;
  EXPECT_NE(a.key(), b.key());
  b = a;
  b.chunked = false;
  EXPECT_NE(a.key(), b.key());
}

TEST(TuningParams, StandardSweepLists) {
  EXPECT_EQ(standard_chunk_sizes().size(), 5u);
  EXPECT_EQ(standard_tile_sizes().size(), 8u);
  EXPECT_EQ(standard_chunk_sizes().front(), 32);
  EXPECT_EQ(standard_tile_sizes().back(), 8);
}

// ------------------------------------------------------- recommended -----

TEST(RecommendedParams, SmallSizesFullyUnrolled) {
  const TuningParams p = recommended_params(12);
  EXPECT_EQ(p.unroll, Unroll::kFull);
  EXPECT_TRUE(p.chunked);
}

TEST(RecommendedParams, LargeSizesTopLookingTiled) {
  const TuningParams p = recommended_params(48);
  EXPECT_EQ(p.unroll, Unroll::kPartial);
  EXPECT_EQ(p.looking, Looking::kTop);
  EXPECT_EQ(p.nb, 8);
}

// ------------------------------------------------------------ facade -----

TEST(BatchCholesky, MakeLayoutFollowsParams) {
  TuningParams p;
  p.chunked = true;
  p.chunk_size = 64;
  const auto chunked = BatchCholesky::make_layout(8, 100, p);
  EXPECT_EQ(chunked.kind(), LayoutKind::kInterleavedChunked);
  EXPECT_EQ(chunked.chunk(), 64);
  p.chunked = false;
  const auto simple = BatchCholesky::make_layout(8, 100, p);
  EXPECT_EQ(simple.kind(), LayoutKind::kInterleaved);
}

TEST(BatchCholesky, ConstructorRejectsInconsistentLayout) {
  TuningParams p;
  p.chunked = true;
  p.chunk_size = 64;
  EXPECT_THROW(
      BatchCholesky(BatchLayout::interleaved_chunked(8, 100, 32), p), Error);
  EXPECT_THROW(BatchCholesky(BatchLayout::interleaved(8, 100), p), Error);
  p.chunked = false;
  EXPECT_THROW(
      BatchCholesky(BatchLayout::interleaved_chunked(8, 100, 32), p), Error);
}

TEST(BatchCholesky, ProgramOnlyForPartialUnroll) {
  TuningParams p = recommended_params(48);
  const BatchCholesky tiled(BatchCholesky::make_layout(48, 64, p), p);
  EXPECT_TRUE(tiled.program().has_value());

  p = recommended_params(8);
  const BatchCholesky unrolled(BatchCholesky::make_layout(8, 64, p), p);
  EXPECT_FALSE(unrolled.program().has_value());
}

TEST(BatchCholesky, FactorizeAndSolveRoundTrip) {
  const int n = 16;
  const std::int64_t batch = 200;
  const TuningParams params = recommended_params(n);
  const BatchLayout layout = BatchCholesky::make_layout(n, batch, params);
  const BatchCholesky chol(layout, params);

  AlignedBuffer<float> data(layout.size_elems());
  generate_spd_batch<float>(layout, data.span());
  std::vector<float> orig(data.begin(), data.end());

  const FactorResult res = chol.factorize<float>(data.span());
  ASSERT_TRUE(res.ok());

  const auto vlayout = BatchVectorLayout::matching(layout);
  AlignedBuffer<float> rhs(vlayout.size_elems());
  for (std::int64_t b = 0; b < batch; ++b) {
    for (int i = 0; i < n; ++i) rhs[vlayout.index(b, i)] = 1.0f;
  }
  chol.solve<float>(std::span<const float>(data.span()), vlayout, rhs.span());

  std::vector<float> a(n * n), x(n);
  const std::vector<float> ones(n, 1.0f);
  for (const std::int64_t b : {std::int64_t{1}, batch - 1}) {
    extract_matrix<float>(layout, std::span<const float>(orig), b, a);
    for (int i = 0; i < n; ++i) x[i] = rhs[vlayout.index(b, i)];
    EXPECT_LT(residual_error<float>(n, a, x, ones), 1e-4);
  }
}

TEST(BatchCholesky, OneShotHelperMatchesFacade) {
  const int n = 8;
  const std::int64_t batch = 96;
  const TuningParams params = recommended_params(n);
  const BatchLayout layout = BatchCholesky::make_layout(n, batch, params);

  AlignedBuffer<double> a(layout.size_elems());
  generate_spd_batch<double>(layout, a.span());
  AlignedBuffer<double> b(layout.size_elems());
  std::copy(a.begin(), a.end(), b.begin());

  const BatchCholesky chol(layout, params);
  EXPECT_TRUE(chol.factorize<double>(a.span()).ok());
  EXPECT_TRUE(factorize_batch<double>(n, batch, params, b.span()).ok());
  EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
}

TEST(BatchCholesky, InfoSpansPlumbedThrough) {
  const int n = 8;
  const TuningParams params = recommended_params(n);
  const BatchLayout layout = BatchCholesky::make_layout(n, 64, params);
  AlignedBuffer<float> data(layout.size_elems());
  generate_spd_batch<float>(layout, data.span());
  poison_matrix<float>(layout, data.span(), 40, 0);
  std::vector<std::int32_t> info(64);
  const BatchCholesky chol(layout, params);
  const FactorResult res = chol.factorize<float>(data.span(), info);
  EXPECT_EQ(res.failed_count, 1);
  EXPECT_EQ(info[40], 1);
}

TEST(BatchCholesky, DoublePrecisionSupported) {
  const int n = 24;
  const TuningParams params = recommended_params(n);
  const BatchLayout layout = BatchCholesky::make_layout(n, 64, params);
  AlignedBuffer<double> data(layout.size_elems());
  generate_spd_batch<double>(layout, data.span());
  std::vector<double> orig(data.begin(), data.end());
  const BatchCholesky chol(layout, params);
  ASSERT_TRUE(chol.factorize<double>(data.span()).ok());

  std::vector<double> a(n * n), l(n * n);
  extract_matrix<double>(layout, std::span<const double>(orig), 10, a);
  extract_matrix<double>(layout, std::span<const double>(data.span()), 10, l);
  EXPECT_LT(reconstruction_error<double>(n, a, l), 1e-12);
}


TEST(BatchCholesky, SolveMultiRhs) {
  const int n = 12, nrhs = 4;
  const std::int64_t batch = 96;
  const TuningParams params = recommended_params(n);
  const BatchLayout layout = BatchCholesky::make_layout(n, batch, params);
  const BatchCholesky chol(layout, params);

  AlignedBuffer<float> data(layout.size_elems());
  generate_spd_batch<float>(layout, data.span());
  std::vector<float> orig(data.begin(), data.end());
  ASSERT_TRUE(chol.factorize<float>(data.span()).ok());

  const BatchRectLayout rlayout =
      BatchRectLayout::matching(layout, n, nrhs);
  AlignedBuffer<float> rhs(rlayout.size_elems());
  for (std::int64_t b = 0; b < batch; ++b) {
    for (int c = 0; c < nrhs; ++c) {
      for (int i = 0; i < n; ++i) {
        rhs[rlayout.index(b, i, c)] = static_cast<float>(c + 1);
      }
    }
  }
  chol.solve_multi<float>(std::span<const float>(data.span()), rlayout,
                          rhs.span());

  std::vector<float> a(n * n), x(n), bv(n);
  for (int c = 0; c < nrhs; ++c) {
    extract_matrix<float>(layout, std::span<const float>(orig), 7, a);
    for (int i = 0; i < n; ++i) {
      x[i] = rhs[rlayout.index(7, i, c)];
      bv[i] = static_cast<float>(c + 1);
    }
    EXPECT_LT(residual_error<float>(n, a, x, bv), 1e-4) << "rhs " << c;
  }
}


TEST(BatchCholesky, CanonicalLayoutUsesTraditionalPath) {
  // The facade also accepts a canonical layout with non-chunked params:
  // it factors per matrix with the blocked reference routine (the
  // traditional structure), so downstream code can A/B the layouts through
  // one interface.
  const int n = 12;
  const std::int64_t batch = 64;
  TuningParams p;
  p.chunked = false;
  const BatchLayout layout = BatchLayout::canonical(n, batch);
  const BatchCholesky chol(layout, p);
  EXPECT_FALSE(chol.program().has_value());

  AlignedBuffer<float> data(layout.size_elems());
  generate_spd_batch<float>(layout, data.span());
  std::vector<float> orig(data.begin(), data.end());
  ASSERT_TRUE(chol.factorize<float>(data.span()).ok());

  std::vector<float> a(n * n), l(n * n);
  extract_matrix<float>(layout, std::span<const float>(orig), 20, a);
  extract_matrix<float>(layout, std::span<const float>(data.span()), 20, l);
  EXPECT_LT(reconstruction_error<float>(n, a, l), 1e-5);
}

}  // namespace
}  // namespace ibchol
