// Tests for upper-triangular support (A = Uᵀ·U), paper §II.C: "Upper
// triangular matrices can be supported in the same manner."
#include <gtest/gtest.h>

#include <vector>

#include "core/batch_cholesky.hpp"
#include "cpu/batch_factor.hpp"
#include "cpu/reference.hpp"
#include "layout/convert.hpp"
#include "layout/generate.hpp"
#include "util/aligned_buffer.hpp"
#include "util/rng.hpp"

namespace ibchol {
namespace {

// -------------------------------------------------------- reference ------

TEST(UpperReference, KnownThreeByThree) {
  // A = L·Lᵀ with L = [[2],[6,1],[-8,5,3]]; U = Lᵀ.
  std::vector<double> a{4, 12, -16, 12, 37, -43, -16, -43, 98};
  ASSERT_EQ(potrf_unblocked_upper(3, a.data(), 3), 0);
  EXPECT_NEAR(a[0 + 0 * 3], 2.0, 1e-12);   // U(0,0)
  EXPECT_NEAR(a[0 + 1 * 3], 6.0, 1e-12);   // U(0,1)
  EXPECT_NEAR(a[0 + 2 * 3], -8.0, 1e-12);  // U(0,2)
  EXPECT_NEAR(a[1 + 1 * 3], 1.0, 1e-12);   // U(1,1)
  EXPECT_NEAR(a[1 + 2 * 3], 5.0, 1e-12);   // U(1,2)
  EXPECT_NEAR(a[2 + 2 * 3], 3.0, 1e-12);   // U(2,2)
}

TEST(UpperReference, DoesNotTouchStrictLower) {
  std::vector<double> a{4, 99, 12, 37};  // 2x2 with sentinel in (1,0)
  a[1] = 99.0;
  // Symmetric value lives in the upper triangle: A = [[4,12],[12,37]].
  a[0 + 1 * 2] = 12.0;
  ASSERT_EQ(potrf_unblocked_upper(2, a.data(), 2), 0);
  EXPECT_DOUBLE_EQ(a[1], 99.0);  // strict lower untouched
}

TEST(UpperReference, InfoMatchesLower) {
  std::vector<double> up(16, 0.0), lo(16, 0.0);
  for (int i = 0; i < 4; ++i) up[i + 4 * i] = lo[i + 4 * i] = 1.0;
  up[2 + 4 * 2] = lo[2 + 4 * 2] = -1.0;
  EXPECT_EQ(potrf_unblocked_upper(4, up.data(), 4),
            potrf_unblocked(4, lo.data(), 4));
}

TEST(UpperReference, PotrsSolves) {
  const int n = 8;
  // Build SPD, factor upper, solve, check residual.
  Xoshiro256 rng(4);
  std::vector<double> g(n * n), a(n * n);
  for (auto& v : g) v = rng.uniform(-1.0, 1.0);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      double acc = (i == j) ? n : 0.0;
      for (int k = 0; k < n; ++k) acc += g[i + k * n] * g[j + k * n];
      a[i + j * n] = acc;
    }
  }
  auto u = a;
  ASSERT_EQ(potrf_unblocked_upper(n, u.data(), n), 0);
  std::vector<double> x(n, 1.0), b(n, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) b[i] += a[i + j * n] * 1.0;
  }
  auto sol = b;
  potrs_vector_upper(n, u.data(), n, sol.data());
  for (int i = 0; i < n; ++i) EXPECT_NEAR(sol[i], 1.0, 1e-9);
}

// ------------------------------------------------------------ batched ----

struct UpperCase {
  int n;
  int nb;
  Looking looking;
  Unroll unroll;
};

void PrintTo(const UpperCase& c, std::ostream* os) {
  *os << "n" << c.n << "_nb" << c.nb << "_" << to_string(c.looking) << "_"
      << to_string(c.unroll);
}

class UpperBatchTest : public ::testing::TestWithParam<UpperCase> {};

TEST_P(UpperBatchTest, UpperFactorIsTransposeOfLower) {
  const auto [n, nb, looking, unroll] = GetParam();
  const auto layout = BatchLayout::interleaved_chunked(n, 100, 32);
  AlignedBuffer<float> lower(layout.size_elems());
  generate_spd_batch<float>(layout, lower.span());
  AlignedBuffer<float> upper(layout.size_elems());
  std::copy(lower.begin(), lower.end(), upper.begin());

  CpuFactorOptions opt;
  opt.nb = nb;
  opt.looking = looking;
  opt.unroll = unroll;
  EXPECT_TRUE(factor_batch_cpu<float>(layout, lower.span(), opt).ok());
  opt.triangle = Triangle::kUpper;
  EXPECT_TRUE(factor_batch_cpu<float>(layout, upper.span(), opt).ok());

  // U(i,j) == L(j,i) bit for bit: both ran the identical schedule, only the
  // index map was transposed.
  for (const std::int64_t b : {std::int64_t{0}, std::int64_t{50},
                               std::int64_t{99}}) {
    for (int j = 0; j < n; ++j) {
      for (int i = j; i < n; ++i) {
        ASSERT_EQ(upper[layout.index(b, j, i)], lower[layout.index(b, i, j)])
            << "b=" << b << " (" << i << "," << j << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, UpperBatchTest,
    ::testing::Values(UpperCase{5, 2, Looking::kTop, Unroll::kPartial},
                      UpperCase{8, 4, Looking::kLeft, Unroll::kPartial},
                      UpperCase{13, 8, Looking::kRight, Unroll::kPartial},
                      UpperCase{16, 8, Looking::kTop, Unroll::kFull},
                      UpperCase{24, 8, Looking::kTop, Unroll::kPartial}));

TEST(UpperBatch, FacadeFactorizeAndSolve) {
  const int n = 12;
  const std::int64_t batch = 96;
  const TuningParams params = recommended_params(n);
  const BatchLayout layout = BatchCholesky::make_layout(n, batch, params);
  const BatchCholesky chol(layout, params, Triangle::kUpper);
  EXPECT_EQ(chol.triangle(), Triangle::kUpper);

  AlignedBuffer<float> data(layout.size_elems());
  generate_spd_batch<float>(layout, data.span());
  std::vector<float> orig(data.begin(), data.end());
  ASSERT_TRUE(chol.factorize<float>(data.span()).ok());

  const auto vlayout = BatchVectorLayout::matching(layout);
  AlignedBuffer<float> rhs(vlayout.size_elems());
  for (std::int64_t b = 0; b < batch; ++b) {
    for (int i = 0; i < n; ++i) rhs[vlayout.index(b, i)] = 1.0f;
  }
  chol.solve<float>(std::span<const float>(data.span()), vlayout, rhs.span());

  std::vector<float> a(n * n), x(n);
  const std::vector<float> ones(n, 1.0f);
  for (const std::int64_t b : {std::int64_t{0}, batch - 1}) {
    extract_matrix<float>(layout, std::span<const float>(orig), b, a);
    for (int i = 0; i < n; ++i) x[i] = rhs[vlayout.index(b, i)];
    EXPECT_LT(residual_error<float>(n, a, x, ones), 1e-4);
  }
}

TEST(UpperBatch, CanonicalPathSupported) {
  const int n = 9;
  const auto layout = BatchLayout::canonical(n, 40);
  AlignedBuffer<double> data(layout.size_elems());
  generate_spd_batch<double>(layout, data.span());
  std::vector<double> orig(data.begin(), data.end());
  CpuFactorOptions opt;
  opt.triangle = Triangle::kUpper;
  ASSERT_TRUE(factor_batch_cpu<double>(layout, data.span(), opt).ok());

  // Reconstruct: Uᵀ·U must equal A.
  std::vector<double> a(n * n), u(n * n);
  extract_matrix<double>(layout, std::span<const double>(orig), 11, a);
  extract_matrix<double>(layout, std::span<const double>(data.span()), 11, u);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i <= j; ++i) {
      double acc = 0.0;
      for (int k = 0; k <= i; ++k) acc += u[k + i * n] * u[k + j * n];
      EXPECT_NEAR(acc, a[i + j * n], 1e-10) << i << "," << j;
    }
  }
}

TEST(UpperBatch, FailureReportingUnchanged) {
  const int n = 8;
  const auto layout = BatchLayout::interleaved(n, 64);
  AlignedBuffer<float> data(layout.size_elems());
  generate_spd_batch<float>(layout, data.span());
  poison_matrix<float>(layout, data.span(), 17, 5);
  CpuFactorOptions opt;
  opt.triangle = Triangle::kUpper;
  std::vector<std::int32_t> info(64);
  const FactorResult res =
      factor_batch_cpu<float>(layout, data.span(), opt, info);
  EXPECT_EQ(res.failed_count, 1);
  EXPECT_EQ(info[17], 6);
}

TEST(UpperBatch, SolveMultiWithUpperFactor) {
  const int n = 10, nrhs = 3;
  const std::int64_t batch = 64;
  const TuningParams params = recommended_params(n);
  const BatchLayout layout = BatchCholesky::make_layout(n, batch, params);
  const BatchCholesky chol(layout, params, Triangle::kUpper);

  AlignedBuffer<float> mats(layout.size_elems());
  generate_spd_batch<float>(layout, mats.span());
  std::vector<float> orig(mats.begin(), mats.end());
  ASSERT_TRUE(chol.factorize<float>(mats.span()).ok());

  const BatchRectLayout rlayout = BatchRectLayout::matching(layout, n, nrhs);
  AlignedBuffer<float> rhs(rlayout.size_elems());
  for (std::int64_t b = 0; b < batch; ++b) {
    for (int c = 0; c < nrhs; ++c) {
      for (int i = 0; i < n; ++i) {
        rhs[rlayout.index(b, i, c)] = static_cast<float>(c + 1);
      }
    }
  }
  chol.solve_multi<float>(std::span<const float>(mats.span()), rlayout,
                          rhs.span());

  std::vector<float> a(n * n), x(n), bv(n);
  for (int c = 0; c < nrhs; ++c) {
    extract_matrix<float>(layout, std::span<const float>(orig), 33, a);
    for (int i = 0; i < n; ++i) {
      x[i] = rhs[rlayout.index(33, i, c)];
      bv[i] = static_cast<float>(c + 1);
    }
    EXPECT_LT(residual_error<float>(n, a, x, bv), 1e-4) << "rhs " << c;
  }
}

}  // namespace
}  // namespace ibchol
