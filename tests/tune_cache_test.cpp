// Robustness tests for the persistent tuning cache (ISSUE 10 satellite 2).
//
// The contract under attack: torn, truncated, checksum-corrupt, or
// version-bumped lines must load as a cold start for their key — never a
// crash, never a half-applied entry — while every intact line keeps
// loading; a writer appending after a torn line starts fresh (mirroring
// Journal.AppendAfterTornLineStartsFresh); and concurrent readers racing
// one writer stay clean (run under check.sh --tsan).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "autotune/evaluator.hpp"
#include "autotune/journal.hpp"
#include "obs/counters.hpp"
#include "tune/cache.hpp"
#include "tune/host_probe.hpp"
#include "tune/instant.hpp"

namespace ibchol {
namespace {

using tune::TuneCache;
using tune::TuneCacheEntry;
using tune::TuneCacheWriter;
using tune::TuneKey;

TuneCacheEntry make_entry(int n, double seconds = 1.25e-3) {
  TuneCacheEntry e;
  e.key.host = "0123456789abcdef";
  e.key.n = n;
  e.key.batch = 4096;
  e.key.layout = "any";
  e.key.tier = SimdIsa::kScalar;
  e.key.storage = StoragePrec::kFp32;
  e.record.n = n;
  e.record.batch = 4096;
  e.record.params.nb = 4;
  e.record.params.looking = Looking::kLeft;
  e.record.params.chunked = true;
  e.record.params.chunk_size = 64;
  e.record.seconds = seconds;
  e.record.gflops = 17.5;
  return e;
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

TEST(TuneCache, LineRoundTripIsByteIdentical) {
  const TuneCacheEntry e = make_entry(16, 7.062748534892125e-4);
  const std::string line = tune_cache_line(e);
  const auto back = tune::parse_tune_cache_line(line);
  ASSERT_TRUE(back.has_value());
  // Re-serializing the parsed entry reproduces the exact bytes — the same
  // %.17g round-trip guarantee the sweep journal gives.
  EXPECT_EQ(tune_cache_line(*back), line);
  EXPECT_EQ(back->key.to_string(), e.key.to_string());
  EXPECT_EQ(back->record.params, e.record.params);
  EXPECT_EQ(back->record.seconds, e.record.seconds);
}

TEST(TuneCache, EveryTruncationParsesAsNothing) {
  const std::string line = tune_cache_line(make_entry(8));
  // A torn write can stop after any byte; no prefix may parse (the crc
  // covers the full payload) and none may crash.
  for (std::size_t len = 0; len < line.size(); ++len) {
    EXPECT_FALSE(tune::parse_tune_cache_line(line.substr(0, len)).has_value())
        << "prefix of length " << len << " parsed";
  }
  EXPECT_TRUE(tune::parse_tune_cache_line(line).has_value());
}

TEST(TuneCache, CorruptPayloadOrChecksumFailsClosed) {
  const std::string line = tune_cache_line(make_entry(8));
  // Flip one byte inside the checksummed payload (mutate a digit, keeping
  // the line structurally valid JSON-ish).
  const std::size_t digit = line.find("4096");
  ASSERT_NE(digit, std::string::npos);
  std::string payload_flip = line;
  payload_flip[digit] = '7';
  EXPECT_FALSE(tune::parse_tune_cache_line(payload_flip).has_value());

  // Flip one hex digit of the crc itself.
  const std::size_t crc_at = line.find("\"crc\":\"") + 7;
  std::string crc_flip = line;
  crc_flip[crc_at] = crc_flip[crc_at] == '0' ? '1' : '0';
  EXPECT_FALSE(tune::parse_tune_cache_line(crc_flip).has_value());
}

TEST(TuneCache, VersionBumpSkipsLine) {
  const std::string line = tune_cache_line(make_entry(8));
  std::string bumped = line;
  const std::size_t v_at = bumped.find("\"v\":");
  ASSERT_NE(v_at, std::string::npos);
  bumped.replace(v_at, 5, "\"v\":9");
  obs::reset_counters();
  EXPECT_FALSE(tune::parse_tune_cache_line(bumped).has_value());
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(obs::counter_value("tune.cache_version_skip"), 1u);
  }
}

TEST(TuneCache, LoadSkipsBadLinesAndKeepsEveryGoodOne) {
  const std::string path = temp_path("tune_cache_mixed.jsonl");
  const TuneCacheEntry a = make_entry(8);
  const TuneCacheEntry b = make_entry(16);
  const TuneCacheEntry a2 = make_entry(8, 9.9e-4);  // same key, re-tuned
  {
    std::ofstream out(path, std::ios::trunc);
    out << tune_cache_line(a) << '\n';
    out << "{\"v\":1,\"crc\":\"0000000000000000\",\"entry\":{}}" << '\n';
    out << tune_cache_line(b) << '\n';
    out << "not json at all" << '\n';
    std::string bumped = tune_cache_line(make_entry(24));
    bumped.replace(bumped.find("\"v\":"), 5, "\"v\":9");
    out << bumped << '\n';
    out << tune_cache_line(a2) << '\n';
    // Torn final line: a crash mid-append.
    out << tune_cache_line(make_entry(32)).substr(0, 40);
  }
  const TuneCache cache = TuneCache::load(path);
  // Bad lines are skipped whole — never half-applied — and good lines all
  // land, the later same-key entry winning.
  EXPECT_EQ(cache.size(), 2u);
  const TuneCacheEntry* got_a = cache.find(a.key);
  ASSERT_NE(got_a, nullptr);
  EXPECT_EQ(got_a->record.seconds, a2.record.seconds);
  const TuneCacheEntry* got_b = cache.find(b.key);
  ASSERT_NE(got_b, nullptr);
  EXPECT_EQ(got_b->record.params, b.record.params);
  TuneKey missing = make_entry(24).key;
  EXPECT_EQ(cache.find(missing), nullptr);
  std::remove(path.c_str());
}

TEST(TuneCache, LoadMissingFileIsEmptyColdStart) {
  const TuneCache cache = TuneCache::load(temp_path("does_not_exist.jsonl"));
  EXPECT_EQ(cache.size(), 0u);
}

// Mirror of Journal.AppendAfterTornLineStartsFresh for the cache writer.
TEST(TuneCache, AppendAfterTornLineStartsFresh) {
  const std::string path = temp_path("tune_cache_torn.jsonl");
  const TuneCacheEntry a = make_entry(8);
  const TuneCacheEntry b = make_entry(16);
  {
    std::ofstream out(path, std::ios::trunc);
    out << tune_cache_line(a) << '\n';
    out << tune_cache_line(make_entry(32)).substr(0, 57);  // torn, no \n
  }
  {
    TuneCacheWriter writer(path);
    writer.append(b);
  }
  const TuneCache cache = TuneCache::load(path);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.find(a.key), nullptr);
  EXPECT_NE(cache.find(b.key), nullptr);
  // The torn fragment stayed torn (its crc fails closed); the fresh entry
  // began on its own line rather than gluing onto the fragment.
  std::ifstream in(path);
  std::string line;
  int parsed = 0, lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    if (tune::parse_tune_cache_line(line)) ++parsed;
  }
  EXPECT_EQ(lines, 3);
  EXPECT_EQ(parsed, 2);
  std::remove(path.c_str());
}

TEST(TuneCache, EnvVariableSelectsDefaultPath) {
  ASSERT_EQ(setenv("IBCHOL_TUNE_CACHE", "/tmp/ibchol_cache_env.jsonl", 1), 0);
  EXPECT_EQ(tune::default_tune_cache_path(), "/tmp/ibchol_cache_env.jsonl");
  ASSERT_EQ(unsetenv("IBCHOL_TUNE_CACHE"), 0);
  EXPECT_EQ(tune::default_tune_cache_path(), "");
}

// A tuner pointed at a wholly corrupt cache must come up cold and then
// tune normally — corruption can cost a re-tune, never correctness.
TEST(TuneCache, InstantTunerColdStartsFromCorruptFile) {
  const std::string path = temp_path("tune_cache_garbage.jsonl");
  {
    std::ofstream out(path, std::ios::trunc);
    out << "garbage\n{\"v\":1,\"crc\":\"ffff\",\"entry\":{\"host\":\n\x01\x02";
  }
  tune::InstantOptions opts;
  opts.cache_path = path;
  opts.batch = 1024;
  opts.install_overrides = false;
  ModelEvaluator eval(
      tune::calibrated_kernel_model(tune::detect_host_profile(false)));
  obs::reset_counters();
  tune::InstantTuner tuner(eval, opts, tune::detect_host_profile(false));
  const TuningParams p = tuner.params_for(8);
  EXPECT_GT(p.nb, 0);
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(obs::counter_value("tune.cache_hit"), 0u);
    EXPECT_EQ(obs::counter_value("tune.cache_miss"), 1u);
  }
  std::remove(path.c_str());
}

// One writer appending while readers reload continuously: no torn reads
// surface (every parsed entry is intact) and no data race exists (this
// suite runs under check.sh --tsan).
TEST(TuneCacheConcurrency, ConcurrentReadersAndOneWriter) {
  const std::string path = temp_path("tune_cache_race.jsonl");
  std::remove(path.c_str());
  constexpr int kEntries = 64;
  constexpr int kReaders = 3;

  std::thread writer([&] {
    TuneCacheWriter w(path);
    for (int i = 0; i < kEntries; ++i) w.append(make_entry(2 + i));
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      std::size_t last = 0;
      for (int pass = 0; pass < 50; ++pass) {
        const TuneCache cache = TuneCache::load(path);
        // Appends only: the visible entry count never goes backwards, and
        // every loaded entry passed its checksum.
        EXPECT_GE(cache.size(), last);
        last = cache.size();
        for (const auto& [key, entry] : cache.entries()) {
          EXPECT_EQ(key, entry.key.to_string());
        }
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();

  const TuneCache final_cache = TuneCache::load(path);
  EXPECT_EQ(final_cache.size(), static_cast<std::size_t>(kEntries));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ibchol
