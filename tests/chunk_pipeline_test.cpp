// Tests for the chunk-resident execution pipeline (cpu/chunk_pipeline.*).
//
// The load-bearing properties:
//  * pack_chunk/unpack_chunk are exact inverses and never touch bytes
//    outside the addressed rows — the packed pipeline must be a pure
//    performance transform, invisible in the output bits;
//  * the packed path (simple interleaved layout staged through scratch)
//    produces the same factor bits as in-place execution over an already
//    chunked layout, including the non-temporal write-back variant;
//  * CpuExec::kAuto resolves through the measured dispatch table and its
//    result is bit-identical to requesting the resolved executor directly;
//  * the first_failed sentinel (int64 max, the min-reduction identity) can
//    never leak to callers — every driver funnels through
//    finalize_factor_result.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "cpu/batch_factor.hpp"
#include "cpu/chunk_pipeline.hpp"
#include "cpu/simd/isa.hpp"
#include "cpu/simd/vec_exec.hpp"
#include "layout/convert.hpp"
#include "layout/generate.hpp"
#include "util/aligned_buffer.hpp"

namespace ibchol {
namespace {

// Scoped environment override that restores the prior value on exit, so
// tests forcing IBCHOL_SIMD_ISA / IBCHOL_CHUNK_NT cannot leak into later
// tests in the same process.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) saved_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (saved_.has_value()) {
      ::setenv(name_, saved_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

// ----------------------------------------------------- scratch sizing ----

TEST(ChunkScratchLanes, FollowsSizingRule) {
  // n=64 float: one lane block is 64*64*32*4 B = 512 KiB, so two fit the
  // 1 MiB budget.
  EXPECT_EQ(chunk_scratch_lanes(64, sizeof(float)), 2 * kLaneBlock);
  // n=64 double: exactly one lane block fills the budget.
  EXPECT_EQ(chunk_scratch_lanes(64, sizeof(double)), kLaneBlock);
  // Small n would fit thousands of lanes; clamped to the top of the
  // paper's chunk-size sweep.
  EXPECT_EQ(chunk_scratch_lanes(16, sizeof(float)), 512);
  // Oversized matrices still get one lane block (the floor), never zero.
  EXPECT_EQ(chunk_scratch_lanes(128, sizeof(float)), kLaneBlock);
}

TEST(ChunkScratchLanes, AlwaysLaneBlockMultipleInRange) {
  for (int n = 1; n <= 96; ++n) {
    for (const std::size_t elem : {sizeof(float), sizeof(double)}) {
      const int lanes = chunk_scratch_lanes(n, elem);
      EXPECT_EQ(lanes % kLaneBlock, 0) << "n=" << n;
      EXPECT_GE(lanes, kLaneBlock) << "n=" << n;
      EXPECT_LE(lanes, 512) << "n=" << n;
    }
  }
}

// ------------------------------------------------------ pack / unpack ----

template <typename T>
void run_pack_round_trip(bool nt_stores) {
  const int n = 5;
  const std::int64_t elems = n * n;
  const std::int64_t stride = 128;  // padded batch of the fake layout
  const std::int64_t lanes = 64;
  const std::int64_t offset = 32;  // chunk starts one lane block in

  AlignedBuffer<T> src(static_cast<std::size_t>(elems) * stride);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<T>(i % 1009) * T(0.5) - T(200);
  }
  AlignedBuffer<T> scratch(static_cast<std::size_t>(elems) * lanes);
  pack_chunk<T>(src.data() + offset, stride, scratch.data(), lanes, elems);
  for (std::int64_t e = 0; e < elems; ++e) {
    for (std::int64_t l = 0; l < lanes; ++l) {
      ASSERT_EQ(scratch[e * lanes + l], src[e * stride + offset + l])
          << "elem-row " << e << " lane " << l;
    }
  }

  // Unpack into a sentinel-filled buffer: addressed rows come back
  // bit-identical, everything else stays untouched.
  AlignedBuffer<T> dst(src.size());
  std::memset(dst.data(), 0x7f, dst.size() * sizeof(T));
  const AlignedBuffer<T> sentinel_copy = [&] {
    AlignedBuffer<T> c(dst.size());
    std::memcpy(c.data(), dst.data(), dst.size() * sizeof(T));
    return c;
  }();
  unpack_chunk<T>(scratch.data(), lanes, dst.data() + offset, stride, elems,
                  nt_stores);
  for (std::int64_t e = 0; e < elems; ++e) {
    for (std::int64_t i = 0; i < stride; ++i) {
      const std::size_t idx = static_cast<std::size_t>(e * stride + i);
      if (i >= offset && i < offset + lanes) {
        ASSERT_EQ(std::memcmp(&dst[idx], &src[idx], sizeof(T)), 0)
            << "row " << e << " col " << i;
      } else {
        ASSERT_EQ(std::memcmp(&dst[idx], &sentinel_copy[idx], sizeof(T)), 0)
            << "clobbered bystander at row " << e << " col " << i;
      }
    }
  }
}

TEST(PackUnpack, RoundTripFloat) { run_pack_round_trip<float>(false); }
TEST(PackUnpack, RoundTripDouble) { run_pack_round_trip<double>(false); }
TEST(PackUnpack, RoundTripFloatNtStores) { run_pack_round_trip<float>(true); }
TEST(PackUnpack, RoundTripDoubleNtStores) {
  run_pack_round_trip<double>(true);
}

// --------------------------------------------------- factor equivalence --

template <typename T>
AlignedBuffer<T> factor_copy(const BatchLayout& layout,
                             const AlignedBuffer<T>& orig,
                             const CpuFactorOptions& options,
                             std::vector<std::int32_t>& info,
                             FactorResult* result = nullptr) {
  AlignedBuffer<T> data(layout.size_elems());
  std::copy(orig.begin(), orig.end(), data.begin());
  info.assign(static_cast<std::size_t>(layout.batch()), 0);
  const FactorResult res = factor_batch_cpu<T>(layout, data.span(), options,
                                               std::span<std::int32_t>(info));
  if (result != nullptr) *result = res;
  return data;
}

// The packed pipeline over the simple interleaved layout must produce, for
// every matrix of the batch, exactly the bits that in-place execution over
// an already chunked layout produces — the pack/compute/unpack staging is
// invisible. Matrices are compared through extract_matrix because the two
// layouts address memory differently.
template <typename T>
void run_packed_vs_in_place(int n, CpuExec exec, Unroll unroll) {
  const std::int64_t batch = 200;  // padded 224: three 64-lane chunks + tail
  const BatchLayout simple = BatchLayout::interleaved(n, batch);
  const BatchLayout chunked = BatchLayout::interleaved_chunked(n, batch, 64);

  AlignedBuffer<T> simple_data(simple.size_elems());
  generate_spd_batch<T>(simple, simple_data.span(),
                        {SpdKind::kGramPlusDiagonal, 977, 50.0});
  AlignedBuffer<T> chunked_data(chunked.size_elems());
  convert_layout<T>(simple, std::span<const T>(simple_data.span()), chunked,
                    chunked_data.span());
  // One failing matrix, to check info and FactorResult travel through the
  // packed path's merge identically.
  poison_matrix<T>(simple, simple_data.span(), 101, 2);
  poison_matrix<T>(chunked, chunked_data.span(), 101, 2);

  CpuFactorOptions opt;
  opt.nb = std::min(8, n);
  opt.unroll = unroll;
  opt.exec = exec;
  opt.chunk_size = 64;  // < padded batch, so the simple layout packs

  std::vector<std::int32_t> packed_info, inplace_info;
  FactorResult packed_res, inplace_res;
  const AlignedBuffer<T> packed =
      factor_copy<T>(simple, simple_data, opt, packed_info, &packed_res);
  const AlignedBuffer<T> inplace =
      factor_copy<T>(chunked, chunked_data, opt, inplace_info, &inplace_res);

  EXPECT_EQ(packed_info, inplace_info);
  EXPECT_EQ(packed_res.failed_count, 1);
  EXPECT_EQ(packed_res.first_failed, 101);
  EXPECT_EQ(inplace_res.failed_count, 1);
  EXPECT_EQ(inplace_res.first_failed, 101);

  std::vector<T> a(static_cast<std::size_t>(n) * n);
  std::vector<T> b(a.size());
  for (std::int64_t m = 0; m < batch; ++m) {
    if (m == 101) continue;  // failed matrix holds NaNs past the pivot
    extract_matrix<T>(simple, std::span<const T>(packed.span()), m, a);
    extract_matrix<T>(chunked, std::span<const T>(inplace.span()), m, b);
    ASSERT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(T)), 0)
        << "matrix " << m << " n=" << n;
  }
}

TEST(ChunkPipeline, PackedMatchesInPlaceVectorizedFloat) {
  run_packed_vs_in_place<float>(32, CpuExec::kVectorized, Unroll::kFull);
}

TEST(ChunkPipeline, PackedMatchesInPlaceVectorizedDouble) {
  run_packed_vs_in_place<double>(48, CpuExec::kVectorized, Unroll::kFull);
}

TEST(ChunkPipeline, PackedMatchesInPlaceSpecializedPartial) {
  run_packed_vs_in_place<float>(24, CpuExec::kSpecialized, Unroll::kPartial);
}

TEST(ChunkPipeline, PackedMatchesInPlaceSmallFused) {
  // n below the fused cutoffs exercises the fused whole-program kernels
  // through the packed staging.
  run_packed_vs_in_place<float>(8, CpuExec::kVectorized, Unroll::kFull);
  run_packed_vs_in_place<float>(6, CpuExec::kSpecialized, Unroll::kFull);
}

TEST(ChunkPipeline, NtStorePathBitIdentical) {
  // Forcing the non-temporal write-back (IBCHOL_CHUNK_NT=1) must change
  // only the store instructions, never the stored bits; this is also the
  // case the sanitizer run leans on to check the streaming rows stay in
  // bounds.
  const int n = 16;
  const std::int64_t batch = 500;
  const BatchLayout layout = BatchLayout::interleaved(n, batch);
  AlignedBuffer<float> orig(layout.size_elems());
  generate_spd_batch<float>(layout, orig.span());

  CpuFactorOptions opt;
  opt.unroll = Unroll::kFull;
  opt.exec = CpuExec::kVectorized;
  opt.chunk_size = 64;

  std::vector<std::int32_t> nt_info, plain_info;
  AlignedBuffer<float> nt, plain;
  {
    ScopedEnv env("IBCHOL_CHUNK_NT", "1");
    nt = factor_copy<float>(layout, orig, opt, nt_info);
  }
  {
    ScopedEnv env("IBCHOL_CHUNK_NT", "0");
    plain = factor_copy<float>(layout, orig, opt, plain_info);
  }
  EXPECT_EQ(nt_info, plain_info);
  EXPECT_EQ(std::memcmp(nt.data(), plain.data(),
                        layout.size_elems() * sizeof(float)),
            0);
}

TEST(ChunkPipeline, AutoScratchSizingMatchesExplicitChunk) {
  // chunk_size = 0 defers to the footprint rule (in place at this batch
  // size); an explicit chunk size forces the packed staging. Either way
  // the factor bits must be identical — packing is invisible.
  const int n = 24;
  const std::int64_t batch = 1500;
  const BatchLayout layout = BatchLayout::interleaved(n, batch);
  AlignedBuffer<double> orig(layout.size_elems());
  generate_spd_batch<double>(layout, orig.span());

  CpuFactorOptions opt;
  opt.unroll = Unroll::kFull;
  opt.exec = CpuExec::kVectorized;
  opt.chunk_size = 0;
  std::vector<std::int32_t> auto_info, explicit_info;
  const AlignedBuffer<double> auto_sized =
      factor_copy<double>(layout, orig, opt, auto_info);
  opt.chunk_size = chunk_scratch_lanes(n, sizeof(double));
  const AlignedBuffer<double> explicit_sized =
      factor_copy<double>(layout, orig, opt, explicit_info);
  EXPECT_EQ(auto_info, explicit_info);
  EXPECT_EQ(std::memcmp(auto_sized.data(), explicit_sized.data(),
                        layout.size_elems() * sizeof(double)),
            0);
}

// ------------------------------------------------------ kAuto dispatch ---

TEST(ResolveCpuExec, ScalarTierPrefersSpecialized) {
  ScopedEnv env("IBCHOL_SIMD_ISA", "scalar");
  for (const int n : {4, 8, 16, 24, 32, 64, 65, 128}) {
    EXPECT_EQ(resolve_cpu_exec(n, SimdIsa::kAuto), CpuExec::kSpecialized)
        << "n=" << n;
  }
}

TEST(ResolveCpuExec, AvxTiersVectorizeUpToWholeMatrixDim) {
  ScopedEnv env("IBCHOL_SIMD_ISA", nullptr);
  if (detect_simd_isa() == SimdIsa::kScalar) {
    GTEST_SKIP() << "host has no AVX tier";
  }
  for (const int n : {4, 8, 16, 24, 32, 48, kMaxVecWholeDim}) {
    EXPECT_EQ(resolve_cpu_exec(n, SimdIsa::kAuto), CpuExec::kVectorized)
        << "n=" << n;
  }
  for (const int n : {kMaxVecWholeDim + 1, 96, 128}) {
    EXPECT_EQ(resolve_cpu_exec(n, SimdIsa::kAuto), CpuExec::kSpecialized)
        << "n=" << n;
  }
}

TEST(ResolveCpuExec, NeverReturnsAuto) {
  for (const SimdIsa isa :
       {SimdIsa::kAuto, SimdIsa::kScalar, SimdIsa::kAvx2, SimdIsa::kAvx512}) {
    for (int n = 1; n <= 80; ++n) {
      EXPECT_NE(resolve_cpu_exec(n, isa), CpuExec::kAuto);
    }
  }
}

TEST(AutoDispatch, MatchesResolvedExecutorBitwise) {
  // Factoring with kAuto must give exactly the bits of the executor the
  // dispatch table names — kAuto is a table lookup, not a fourth code path.
  for (const int n : {8, 24, 48}) {
    const std::int64_t batch = 3 * kLaneBlock;
    const BatchLayout layout = BatchLayout::interleaved_chunked(n, batch, 64);
    AlignedBuffer<float> orig(layout.size_elems());
    generate_spd_batch<float>(layout, orig.span());

    CpuFactorOptions opt;
    opt.nb = std::min(8, n);
    opt.unroll = Unroll::kPartial;  // kAuto→vectorized implies full unroll
    opt.exec = CpuExec::kAuto;
    std::vector<std::int32_t> auto_info, direct_info;
    const AlignedBuffer<float> via_auto =
        factor_copy<float>(layout, orig, opt, auto_info);

    const CpuExec resolved = resolve_cpu_exec(n, SimdIsa::kAuto);
    opt.exec = resolved;
    if (resolved == CpuExec::kVectorized) opt.unroll = Unroll::kFull;
    const AlignedBuffer<float> direct =
        factor_copy<float>(layout, orig, opt, direct_info);

    EXPECT_EQ(auto_info, direct_info) << "n=" << n;
    EXPECT_EQ(std::memcmp(via_auto.data(), direct.data(),
                          layout.size_elems() * sizeof(float)),
              0)
        << "n=" << n << " resolved=" << to_string(resolved);
  }
}

TEST(AutoDispatch, StringRoundTrip) {
  EXPECT_EQ(to_string(CpuExec::kAuto), "auto");
  EXPECT_EQ(cpu_exec_from_string("auto"), CpuExec::kAuto);
}

// -------------------------------------------------- first_failed paths ---

TEST(FinalizeFactorResult, MapsSentinelToMinusOne) {
  constexpr std::int64_t kSentinel =
      std::numeric_limits<std::int64_t>::max();
  EXPECT_EQ(finalize_factor_result(0, kSentinel).first_failed, -1);
  EXPECT_TRUE(finalize_factor_result(0, kSentinel).ok());
  // Even a (buggy) caller that counted failures without recording an index
  // gets the public convention, never the reduction identity.
  EXPECT_EQ(finalize_factor_result(2, kSentinel).first_failed, -1);
  const FactorResult res = finalize_factor_result(3, 7);
  EXPECT_EQ(res.failed_count, 3);
  EXPECT_EQ(res.first_failed, 7);
}

template <typename T>
void expect_clean_result(const BatchLayout& layout) {
  AlignedBuffer<T> data(layout.size_elems());
  generate_spd_batch<T>(layout, data.span());
  CpuFactorOptions opt;
  const FactorResult res = factor_batch_cpu<T>(layout, data.span(), opt);
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.failed_count, 0);
  // The regression this guards: the canonical driver used to return the
  // int64-max reduction sentinel as first_failed on all-success batches.
  EXPECT_EQ(res.first_failed, -1);
}

TEST(SentinelConvention, CleanBatchesReportMinusOne) {
  expect_clean_result<float>(BatchLayout::canonical(12, 50));
  expect_clean_result<float>(BatchLayout::interleaved(12, 50));
  expect_clean_result<double>(BatchLayout::interleaved_chunked(12, 50, 32));
}

TEST(SentinelConvention, AllFailedReportsFirstIndex) {
  for (const BatchLayout& layout :
       {BatchLayout::canonical(8, 40), BatchLayout::interleaved(8, 40)}) {
    AlignedBuffer<float> data(layout.size_elems());
    generate_spd_batch<float>(layout, data.span());
    for (std::int64_t b = 0; b < layout.batch(); ++b) {
      poison_matrix<float>(layout, data.span(), b, 0);
    }
    std::vector<std::int32_t> info(layout.batch(), 0);
    CpuFactorOptions opt;
    const FactorResult res = factor_batch_cpu<float>(
        layout, data.span(), opt, std::span<std::int32_t>(info));
    EXPECT_EQ(res.failed_count, layout.batch());
    EXPECT_EQ(res.first_failed, 0);
    for (const std::int32_t i : info) EXPECT_EQ(i, 1);
  }
}

}  // namespace
}  // namespace ibchol
