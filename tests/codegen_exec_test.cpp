// Semantic validation of the generated CUDA kernels: a mini interpreter
// executes the emitted straight-line source (the full-unroll variants are
// pure sequences of assignments) for one simulated thread and compares the
// result against the reference factorization. This proves the generated
// code is *correct*, not merely textually plausible.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "cpu/reference.hpp"
#include "kernels/cuda_codegen.hpp"
#include "util/rng.hpp"

namespace ibchol {
namespace {

// Executes the body of a fully unrolled generated kernel for thread
// `tid` of block 0 over the memory image `mem` (the chunk's data). Handles
// exactly the statement forms the generator emits:
//   rX_ij = dA[k];           load
//   dA[k] = rX_ij;           store
//   v = sqrtf(v);            square root
//   inv = 1.0f/v;            reciprocal
//   a *= inv;                scale
//   a -= b*c;  a -= (b*c);   fused update
//   a /= b;                  division
class KernelInterpreter {
 public:
  explicit KernelInterpreter(std::vector<float>& mem, int tid)
      : mem_(mem), tid_(tid) {}

  void run(const std::string& source) {
    std::istringstream in(source);
    std::string line;
    bool in_body = false;
    while (std::getline(in, line)) {
      const std::string s = strip(line);
      if (s.empty() || s.rfind("//", 0) == 0 || s.rfind("#", 0) == 0) {
        continue;
      }
      if (s.find('{') != std::string::npos) {
        in_body = true;
        continue;
      }
      if (!in_body) continue;
      if (s == "}") break;
      if (s.rfind("float", 0) == 0) continue;          // declarations
      if (s.rfind("dA +=", 0) == 0) continue;          // per-thread base
      execute(s);
    }
  }

 private:
  static std::string strip(const std::string& s) {
    const auto a = s.find_first_not_of(" \t");
    if (a == std::string::npos) return "";
    const auto b = s.find_last_not_of(" \t");
    return s.substr(a, b - a + 1);
  }

  float read_operand(const std::string& token) {
    if (token.rfind("dA[", 0) == 0) {
      const long idx = std::stol(token.substr(3));
      return mem_.at(static_cast<std::size_t>(idx) + tid_);
    }
    if (token == "1.0f") return 1.0f;
    const auto it = vars_.find(token);
    if (it == vars_.end()) {
      ADD_FAILURE() << "read of undefined variable " << token;
      return 0.0f;
    }
    return it->second;
  }

  void write_operand(const std::string& token, float v) {
    if (token.rfind("dA[", 0) == 0) {
      const long idx = std::stol(token.substr(3));
      mem_.at(static_cast<std::size_t>(idx) + tid_) = v;
      return;
    }
    vars_[token] = v;
  }

  void execute(std::string s) {
    ASSERT_EQ(s.back(), ';') << s;
    s.pop_back();
    // Normalize: remove parentheses around products.
    std::string t;
    for (const char c : s) {
      if (c != '(' && c != ')') t += c;
    }
    // Compound operators first.
    if (const auto p = t.find(" -= "); p != std::string::npos) {
      const std::string lhs = t.substr(0, p);
      const std::string rhs = t.substr(p + 4);
      const auto mul = rhs.find('*');
      ASSERT_NE(mul, std::string::npos) << s;
      const float b = read_operand(rhs.substr(0, mul));
      const float c = read_operand(rhs.substr(mul + 1));
      write_operand(lhs, read_operand(lhs) - b * c);
      return;
    }
    if (const auto p = t.find(" *= "); p != std::string::npos) {
      const std::string lhs = t.substr(0, p);
      write_operand(lhs, read_operand(lhs) * read_operand(t.substr(p + 4)));
      return;
    }
    if (const auto p = t.find(" /= "); p != std::string::npos) {
      const std::string lhs = t.substr(0, p);
      write_operand(lhs, read_operand(lhs) / read_operand(t.substr(p + 4)));
      return;
    }
    const auto eq = t.find(" = ");
    ASSERT_NE(eq, std::string::npos) << s;
    const std::string lhs = t.substr(0, eq);
    std::string rhs = t.substr(eq + 3);
    if (rhs.rfind("sqrtf", 0) == 0) {
      write_operand(lhs, std::sqrt(read_operand(rhs.substr(5))));
      return;
    }
    if (const auto div = rhs.find('/'); div != std::string::npos) {
      write_operand(lhs, read_operand(rhs.substr(0, div)) /
                             read_operand(rhs.substr(div + 1)));
      return;
    }
    write_operand(lhs, read_operand(rhs));
  }

  std::vector<float>& mem_;
  int tid_;
  std::map<std::string, float> vars_;
};

struct ExecCase {
  int n;
  int nb;
  Looking looking;
};

void PrintTo(const ExecCase& c, std::ostream* os) {
  *os << "n" << c.n << "_nb" << c.nb << "_" << to_string(c.looking);
}

class CodegenExecTest : public ::testing::TestWithParam<ExecCase> {};

TEST_P(CodegenExecTest, GeneratedKernelFactorsCorrectly) {
  const auto [n, nb, looking] = GetParam();
  const int chunk = 32;

  CodegenConfig cfg;
  cfg.n = n;
  cfg.nb = nb;
  cfg.looking = looking;
  cfg.unroll = Unroll::kFull;
  cfg.chunk = chunk;
  const std::string source = generate_cuda_kernel(cfg);

  // Memory image of one chunk in the interleaved layout: element (i,j) of
  // lane t at (j*n + i)*chunk + t. Fill a few lanes with distinct SPD
  // matrices.
  std::vector<float> mem(static_cast<std::size_t>(n) * n * chunk, 0.0f);
  std::vector<std::vector<double>> dense;
  Xoshiro256 rng(55);
  const std::vector<int> lanes{0, 1, 31};
  for (const int lane : lanes) {
    std::vector<double> g(static_cast<std::size_t>(n) * n);
    for (auto& v : g) v = rng.uniform(-1.0, 1.0);
    std::vector<double> a(static_cast<std::size_t>(n) * n);
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) {
        double acc = (i == j) ? n : 0.0;
        for (int k = 0; k < n; ++k) {
          acc += g[i + static_cast<std::size_t>(k) * n] *
                 g[j + static_cast<std::size_t>(k) * n];
        }
        a[i + static_cast<std::size_t>(j) * n] = acc;
        mem[static_cast<std::size_t>(j * n + i) * chunk + lane] =
            static_cast<float>(acc);
      }
    }
    dense.push_back(std::move(a));
  }

  // Execute the generated kernel for each populated lane (thread).
  for (const int lane : lanes) {
    KernelInterpreter interp(mem, lane);
    interp.run(source);
  }

  // Compare each lane's lower triangle against the reference factor.
  for (std::size_t li = 0; li < lanes.size(); ++li) {
    std::vector<double> expect = dense[li];
    ASSERT_EQ(potrf_unblocked(n, expect.data(), n), 0);
    for (int j = 0; j < n; ++j) {
      for (int i = j; i < n; ++i) {
        const float got =
            mem[static_cast<std::size_t>(j * n + i) * chunk + lanes[li]];
        const double want = expect[i + static_cast<std::size_t>(j) * n];
        EXPECT_NEAR(got, want, 5e-4 * std::max(1.0, std::abs(want)))
            << "lane " << lanes[li] << " (" << i << "," << j << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Variants, CodegenExecTest,
    ::testing::Values(ExecCase{2, 2, Looking::kTop},
                      ExecCase{4, 2, Looking::kTop},
                      ExecCase{4, 2, Looking::kLeft},
                      ExecCase{4, 2, Looking::kRight},
                      ExecCase{6, 2, Looking::kTop},
                      ExecCase{6, 3, Looking::kLeft},
                      ExecCase{8, 2, Looking::kRight},
                      ExecCase{8, 4, Looking::kTop},
                      ExecCase{8, 8, Looking::kTop},
                      ExecCase{12, 4, Looking::kLeft},
                      ExecCase{16, 4, Looking::kTop},
                      // Corner cases: n not divisible by nb.
                      ExecCase{5, 2, Looking::kTop},
                      ExecCase{7, 3, Looking::kLeft},
                      ExecCase{10, 4, Looking::kRight},
                      ExecCase{13, 8, Looking::kTop}));

TEST(CodegenExec, UntouchedLanesStayZero) {
  CodegenConfig cfg;
  cfg.n = 4;
  cfg.nb = 2;
  cfg.chunk = 32;
  cfg.unroll = Unroll::kFull;
  const std::string source = generate_cuda_kernel(cfg);
  std::vector<float> mem(4 * 4 * 32, 0.0f);
  // Put an identity into lane 5 only; run lane 5's thread.
  for (int i = 0; i < 4; ++i) mem[(i * 4 + i) * 32 + 5] = 1.0f;
  KernelInterpreter interp(mem, 5);
  interp.run(source);
  // Lane 6 (never executed) must remain all zeros.
  for (int e = 0; e < 16; ++e) EXPECT_EQ(mem[e * 32 + 6], 0.0f);
  // Lane 5 factored the identity to the identity.
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(mem[(i * 4 + i) * 32 + 5], 1.0f);
}

}  // namespace
}  // namespace ibchol
