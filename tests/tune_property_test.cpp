// Property tests for the instant-tuning stack (ISSUE 10 satellite 1 +
// acceptance grid).
//
// The central property: for any seeded (n, batch, layout domain, storage)
// point, the calibrated model's top-K plan — measured on the memoized
// ModelEvaluator with deterministic per-point noise — must contain a
// configuration within 10% of the exhaustive sweep's winner, while probing
// at most a quarter of the space (once the space is big enough for a
// quarter to mean anything). The evaluator's jitter is seeded by the
// tuning point itself, so every run of this suite sees the identical
// "measurement" landscape and a pass is pinned forever.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "autotune/analyze.hpp"
#include "autotune/evaluator.hpp"
#include "autotune/space.hpp"
#include "core/batch_cholesky.hpp"
#include "core/tuned_overrides.hpp"
#include "cpu/chunk_pipeline.hpp"
#include "cpu/simd/isa.hpp"
#include "forest/forest.hpp"
#include "kernels/counts.hpp"
#include "kernels/options.hpp"
#include "obs/counters.hpp"
#include "tune/host_probe.hpp"
#include "tune/instant.hpp"
#include "tune/probe_plan.hpp"

namespace ibchol {
namespace {

using tune::InstantOptions;
using tune::InstantTuner;
using tune::ProbePlan;
using tune::ProbeResult;

// Measurement-noise magnitude for the ModelEvaluator backend. Matches the
// run-to-run jitter a wall-clock backend shows without ever letting a
// lucky draw jump the 10% agreement band.
constexpr double kNoiseSigma = 0.03;

// One calibrated model for the whole suite. Micro-probes are skipped: the
// agreement property compares the model against an evaluator built from
// the *same* model, so calibration constants cancel and the test stays
// deterministic across hosts.
const KernelModel& test_model() {
  static const KernelModel model =
      tune::calibrated_kernel_model(tune::detect_host_profile(false));
  return model;
}

double gflops_of(int n, std::int64_t batch, double seconds) {
  return static_cast<double>(batch) * nominal_flops_per_matrix(n) / seconds /
         1e9;
}

struct PropertyPoint {
  int n;
  std::int64_t batch;
  SpaceOptions space;
  std::string label;
};

// The seeded property grid: ≥ 50 distinct (n, batch, layout domain,
// storage) points. Deterministic by construction (no RNG needed — the
// cross product IS the seed).
std::vector<PropertyPoint> property_points() {
  std::vector<PropertyPoint> points;
  const std::vector<int> sizes = {4, 8, 12, 16, 24, 32, 40, 48, 64};
  const std::vector<std::int64_t> batches = {2048, 16384};
  const std::vector<StoragePrec> precs = {
      StoragePrec::kFp32, StoragePrec::kBf16, StoragePrec::kFp16};
  for (const int n : sizes) {
    for (const std::int64_t batch : batches) {
      for (const StoragePrec prec : precs) {
        SpaceOptions space = tune::default_instant_space();
        space.storage_precs = {prec};
        // Alternate the layout domain across the grid so "any", "chunked",
        // and "simple" all appear.
        const std::size_t i = points.size();
        if (i % 3 == 1) space.include_non_chunked = false;  // chunked only
        if (i % 3 == 2) space.chunk_sizes.clear();          // simple only
        PropertyPoint p;
        p.n = n;
        p.batch = batch;
        p.space = space;
        p.label = "n=" + std::to_string(n) +
                  " batch=" + std::to_string(batch) + " prec=" +
                  to_string(prec) + " domain=" + std::to_string(i % 3);
        points.push_back(std::move(p));
      }
    }
  }
  return points;
}

// Exhaustive winner + plan agreement for one point; shared by the property
// sweep and the acceptance grid.
void check_point(const PropertyPoint& pt, ModelEvaluator& eval) {
  const std::vector<TuningParams> space = enumerate_space(pt.n, pt.space);
  ASSERT_FALSE(space.empty()) << pt.label;
  double best_seconds = 1e300;
  for (const TuningParams& p : space) {
    best_seconds = std::min(best_seconds, eval.seconds(pt.n, pt.batch, p));
  }
  const double best_gflops = gflops_of(pt.n, pt.batch, best_seconds);

  const ProbePlan plan =
      tune::plan_probes(test_model(), pt.n, pt.batch, pt.space, 8);
  EXPECT_EQ(plan.space_points, space.size()) << pt.label;
  const ProbeResult probed = tune::run_probe_plan(eval, plan);

  // Probe-count bounds: never more than K or the space itself, and once
  // the space is large enough for "a quarter" to exceed K, strictly
  // ≤ 25% of the sweep — the point of model-guided probing.
  const int sp = static_cast<int>(space.size());
  EXPECT_LE(probed.evaluations, std::min(sp, 8)) << pt.label;
  if (sp >= 32) {
    EXPECT_LE(probed.evaluations * 4, sp) << pt.label;
  }

  // Within 10% of the exhaustive winner's rate.
  EXPECT_GE(probed.winner.gflops, 0.90 * best_gflops)
      << pt.label << ": probe winner " << probed.winner.gflops
      << " GF/s vs exhaustive " << best_gflops << " GF/s";
}

TEST(TuneProperty, ModelGuidedTopKMatchesExhaustiveSweep) {
  const std::vector<PropertyPoint> points = property_points();
  ASSERT_GE(points.size(), 50u);
  ModelEvaluator eval(test_model(), kNoiseSigma);
  for (const PropertyPoint& pt : points) check_point(pt, eval);
}

// The ISSUE 10 acceptance grid: every featured n, default instant domain,
// paper batch, plus the probe-count bound, in one focused test.
TEST(TuneProperty, AcceptanceGridWithinTenPercent) {
  ModelEvaluator eval(test_model(), kNoiseSigma);
  for (const int n : {4, 8, 16, 32, 48, 64}) {
    PropertyPoint pt;
    pt.n = n;
    pt.batch = 16384;
    pt.space = tune::default_instant_space();
    pt.label = "acceptance n=" + std::to_string(n);
    check_point(pt, eval);
  }
}

// Cache hit must hand back bit-identical TuningParams to the miss path,
// and a warm cache must answer without a single evaluator probe.
TEST(TuneProperty, CacheHitBitIdenticalToMissPathAndProbeFree) {
  const std::string path = testing::TempDir() + "tune_property_cache.jsonl";
  std::remove(path.c_str());

  InstantOptions opts;
  opts.cache_path = path;
  opts.batch = 4096;
  opts.install_overrides = false;
  const tune::HostProfile profile = tune::detect_host_profile(false);

  ModelEvaluator eval(test_model(), kNoiseSigma);
  obs::reset_counters();
  TuningParams cold;
  {
    InstantTuner tuner(eval, opts, profile);
    cold = tuner.params_for(16);
  }
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(obs::counter_value("tune.cache_miss"), 1u);
    EXPECT_GT(obs::counter_value("tune.probe"), 0u);
  }

  // A fresh tuner (stand-in for a fresh process: nothing shared but the
  // file) must answer from the cache alone.
  ModelEvaluator eval2(test_model(), kNoiseSigma);
  obs::reset_counters();
  InstantTuner warm(eval2, opts, profile);
  const TuningParams hit = warm.params_for(16);
  EXPECT_EQ(hit, cold);
  EXPECT_EQ(hit.key(), cold.key());
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(obs::counter_value("tune.cache_hit"), 1u);
    EXPECT_EQ(obs::counter_value("tune.cache_miss"), 0u);
    EXPECT_EQ(obs::counter_value("tune.probe"), 0u);
  }
  std::remove(path.c_str());
}

// Warm winners must flow into recommended_params (the facade's entry
// point) via the override table, and clear back out on uninstall.
TEST(TuneProperty, InstalledOverridesServeRecommendedParams) {
  const std::string path =
      testing::TempDir() + "tune_property_overrides.jsonl";
  std::remove(path.c_str());
  InstantOptions opts;
  opts.cache_path = path;
  opts.batch = 4096;
  opts.install_overrides = true;
  const tune::HostProfile profile = tune::detect_host_profile(false);
  ModelEvaluator eval(test_model(), kNoiseSigma);
  {
    InstantTuner tuner(eval, opts, profile);
    const TuningParams tuned = tuner.params_for(24);
    obs::reset_counters();
    const TuningParams served = recommended_params(24);
    EXPECT_EQ(served, tuned);
    if constexpr (obs::kEnabled) {
      EXPECT_GE(obs::counter_value("tune.override_hit"), 1u);
      // Serving from the installed table runs zero evaluator probes.
      EXPECT_EQ(obs::counter_value("tune.probe"), 0u);
    }
    // Sizes the tuner never saw keep the paper defaults.
    const TuningParams untouched = recommended_params(12);
    EXPECT_EQ(untouched.exec, CpuExec::kAuto);
  }
  InstantTuner::uninstall();
  obs::reset_counters();
  (void)recommended_params(24);
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(obs::counter_value("tune.override_hit"), 0u);
  }
  std::remove(path.c_str());
}

// Drift: sustained observations far off the cached expectation mark the
// size, and poll_drift re-tunes it.
TEST(TuneProperty, DriftDetectionTriggersRetune) {
  InstantOptions opts;
  opts.cache_path = "/dev/null";  // loads empty; appends vanish
  opts.batch = 4096;
  opts.install_overrides = false;
  opts.min_drift_samples = 4;
  const tune::HostProfile profile = tune::detect_host_profile(false);
  ModelEvaluator eval(test_model(), kNoiseSigma);
  InstantTuner tuner(eval, opts, profile);

  const TuningParams tuned = tuner.params_for(16);
  EXPECT_TRUE(tuner.drifted().empty());

  // Healthy observations (exactly the expectation) never trip the wire.
  const double expected = eval.seconds(16, 4096, tuned);
  for (int i = 0; i < 8; ++i) tuner.observe(16, 4096, expected);
  EXPECT_TRUE(tuner.drifted().empty());

  // A 2x slowdown (far past the 25% threshold) over min_drift_samples
  // observations must mark the size drifted...
  obs::reset_counters();
  for (int i = 0; i < 16; ++i) tuner.observe(16, 4096, 2.0 * expected);
  const std::vector<int> marked = tuner.drifted();
  ASSERT_EQ(marked.size(), 1u);
  EXPECT_EQ(marked[0], 16);
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(obs::counter_value("tune.drift_detected"), 1u);
  }

  // ...and poll_drift must re-tune it and clear the mark.
  EXPECT_EQ(tuner.poll_drift(), 1);
  EXPECT_TRUE(tuner.drifted().empty());
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(obs::counter_value("tune.retune"), 1u);
    EXPECT_GT(obs::counter_value("tune.probe"), 0u);
  }
}

// The tuned executor override must reach resolve_cpu_exec keyed on the
// host's resolved tier, and leave other sizes on the static table.
TEST(TuneProperty, ExecOverrideReachesResolveCpuExec) {
  const SimdIsa tier = resolve_simd_isa(SimdIsa::kAuto);
  const CpuExec fallback = resolve_cpu_exec(48, SimdIsa::kAuto);
  const CpuExec neighbour = resolve_cpu_exec(32, SimdIsa::kAuto);
  const CpuExec forced = fallback == CpuExec::kSpecialized
                             ? CpuExec::kVectorized
                             : CpuExec::kSpecialized;
  auto table = std::make_shared<std::map<std::pair<int, SimdIsa>, CpuExec>>();
  (*table)[{48, tier}] = forced;
  set_cpu_exec_overrides(table);
  obs::reset_counters();
  EXPECT_EQ(resolve_cpu_exec(48, SimdIsa::kAuto), forced);
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(obs::counter_value("tune.exec_override"), 1u);
  }
  // A size without an override entry keeps its static-table answer.
  EXPECT_EQ(resolve_cpu_exec(32, SimdIsa::kAuto), neighbour);
  set_cpu_exec_overrides(nullptr);
  EXPECT_EQ(resolve_cpu_exec(48, SimdIsa::kAuto), fallback);
}

// Model-vs-forest ranking: a forest trained on an exhaustive model sweep
// must, like the model, put a within-10% configuration in its top-K — the
// learned ranking and the analytical one agree on what matters.
TEST(TuneProperty, ForestRankingAgreesWithModelOnTopK) {
  const int n = 32;
  const std::int64_t batch = 16384;
  const SpaceOptions sopts = tune::default_instant_space();
  const std::vector<TuningParams> space = enumerate_space(n, sopts);
  ModelEvaluator eval(test_model(), kNoiseSigma);

  SweepDataset ds;
  double best_seconds = 1e300;
  for (const TuningParams& p : space) {
    SweepRecord r;
    r.n = n;
    r.batch = batch;
    r.params = p;
    r.seconds = eval.seconds(n, batch, p);
    r.gflops = gflops_of(n, batch, r.seconds);
    best_seconds = std::min(best_seconds, r.seconds);
    ds.add(r);
  }
  const double best_gflops = gflops_of(n, batch, best_seconds);

  RandomForest forest;
  const AnalysisData data = build_analysis_data(ds);
  ForestOptions fopts;
  fopts.num_trees = 120;  // plenty for ranking; keeps the test quick
  forest.fit(data.features, data.target, fopts);

  const auto ranked = tune::rank_with_forest(forest, n, space, 8);
  ASSERT_EQ(ranked.size(), 8u);
  double ranked_best = 0.0;
  for (const auto& c : ranked) {
    const double s = eval.seconds(n, batch, c.params);
    ranked_best = std::max(ranked_best, gflops_of(n, batch, s));
  }
  EXPECT_GE(ranked_best, 0.90 * best_gflops)
      << "forest top-8 best " << ranked_best << " GF/s vs exhaustive "
      << best_gflops;
}

}  // namespace
}  // namespace ibchol
