// Tests for the tile-program IR and its builders.
#include <gtest/gtest.h>

#include <map>

#include "kernels/tile_program.hpp"

namespace ibchol {
namespace {

int count_kind(const TileProgram& p, TileOp::Kind kind) {
  int c = 0;
  for (const auto& op : p.ops) c += (op.kind == kind);
  return c;
}

// -------------------------------------------------------------- basics --

TEST(TileProgram, SingleTileProgramIsLoadFactorStore) {
  const TileProgram p = build_tile_program(4, 4, Looking::kTop);
  ASSERT_EQ(p.ops.size(), 3u);
  EXPECT_EQ(p.ops[0].kind, TileOp::Kind::kLoadLower);
  EXPECT_EQ(p.ops[1].kind, TileOp::Kind::kPotrf);
  EXPECT_EQ(p.ops[2].kind, TileOp::Kind::kStoreLower);
}

TEST(TileProgram, SingleTileIdenticalAcrossLookings) {
  const auto top = build_tile_program(6, 6, Looking::kTop);
  const auto left = build_tile_program(6, 6, Looking::kLeft);
  const auto right = build_tile_program(6, 6, Looking::kRight);
  EXPECT_EQ(top.ops, left.ops);
  EXPECT_EQ(top.ops, right.ops);
}

TEST(TileProgram, RejectsInvalidArguments) {
  EXPECT_THROW((void)build_tile_program(0, 1, Looking::kTop), Error);
  EXPECT_THROW((void)build_tile_program(4, 0, Looking::kTop), Error);
  EXPECT_THROW((void)build_tile_program(4, 5, Looking::kTop), Error);
}

TEST(TileProgram, GridComputation) {
  EXPECT_EQ(build_tile_program(8, 2, Looking::kTop).grid(), 4);
  EXPECT_EQ(build_tile_program(9, 2, Looking::kTop).grid(), 5);
  EXPECT_EQ(build_tile_program(8, 8, Looking::kTop).grid(), 1);
}

TEST(TileProgram, UsesAtMostThreeRegisterTiles) {
  for (const auto looking :
       {Looking::kRight, Looking::kLeft, Looking::kTop}) {
    const auto p = build_tile_program(24, 4, looking);
    EXPECT_LE(p.num_register_tiles(), 3);
  }
}

// ---------------------------------------------------- structural checks --

class ProgramGrid
    : public ::testing::TestWithParam<std::tuple<int, int, Looking>> {};

TEST_P(ProgramGrid, ValidatesAndCoversMatrix) {
  const auto [n, nb, looking] = GetParam();
  if (nb > n) GTEST_SKIP();
  const TileProgram p = build_tile_program(n, nb, looking);
  EXPECT_EQ(validate_program(p), p.ops.size());

  // Every element of the lower triangle must be covered by at least one
  // store (the factorization writes the whole factor).
  std::map<std::pair<int, int>, int> stored;
  for (const auto& op : p.ops) {
    if (op.kind == TileOp::Kind::kStoreFull) {
      for (int j = 0; j < op.cols; ++j) {
        for (int i = 0; i < op.rows; ++i) {
          stored[{op.row0 + i, op.col0 + j}]++;
        }
      }
    } else if (op.kind == TileOp::Kind::kStoreLower) {
      for (int j = 0; j < op.cols; ++j) {
        for (int i = j; i < op.rows; ++i) {
          stored[{op.row0 + i, op.col0 + j}]++;
        }
      }
    }
  }
  for (int j = 0; j < n; ++j) {
    for (int i = j; i < n; ++i) {
      EXPECT_GE((stored[{i, j}]), 1) << "element (" << i << "," << j
                                     << ") never stored";
    }
  }
  // Nothing above the diagonal is ever written.
  for (const auto& [coord, count] : stored) {
    EXPECT_GE(coord.first, coord.second)
        << "store above diagonal at (" << coord.first << "," << coord.second
        << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ProgramGrid,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8, 13, 16, 24, 33, 48),
                       ::testing::Values(1, 2, 3, 4, 8),
                       ::testing::Values(Looking::kRight, Looking::kLeft,
                                         Looking::kTop)));

// ------------------------------------------------ write-count ordering --

TEST(TileProgram, WriteCountsOrderRightGreaterLeftGreaterTop) {
  // The paper's §III conclusion: the lazier the evaluation, the fewer
  // writes. For multi-tile programs: right > left > top.
  const int n = 48, nb = 8;
  auto stores = [](const TileProgram& p) {
    std::int64_t s = 0;
    for (const auto& op : p.ops) {
      if (op.kind == TileOp::Kind::kStoreFull) s += op.rows * op.cols;
      if (op.kind == TileOp::Kind::kStoreLower) {
        s += op.rows * (op.rows + 1) / 2;
      }
    }
    return s;
  };
  const auto right = stores(build_tile_program(n, nb, Looking::kRight));
  const auto left = stores(build_tile_program(n, nb, Looking::kLeft));
  const auto top = stores(build_tile_program(n, nb, Looking::kTop));
  EXPECT_GT(right, left);
  EXPECT_GT(left, top);
}

TEST(TileProgram, TopLookingStoresEachTileExactlyOnce) {
  const TileProgram p = build_tile_program(32, 8, Looking::kTop);
  int full = count_kind(p, TileOp::Kind::kStoreFull);
  int lower = count_kind(p, TileOp::Kind::kStoreLower);
  const int t = p.grid();
  EXPECT_EQ(lower, t);                      // one diagonal tile per step
  EXPECT_EQ(full, t * (t - 1) / 2);         // each off-diagonal tile once
}

TEST(TileProgram, RightLookingStoreCountMatchesClosedForm) {
  const TileProgram p = build_tile_program(32, 8, Looking::kRight);
  const int t = p.grid();
  // Per step kk: 1 diag + (t-kk-1) panel + trailing tiles. Trailing writes:
  // sum_{jj>kk} (1 + (t-jj-1)).
  int expect_full = 0, expect_lower = 0;
  for (int kk = 0; kk < t; ++kk) {
    expect_lower += 1;
    expect_full += t - kk - 1;
    for (int jj = kk + 1; jj < t; ++jj) {
      expect_lower += 1;
      expect_full += t - jj - 1;
    }
  }
  EXPECT_EQ(count_kind(p, TileOp::Kind::kStoreFull), expect_full);
  EXPECT_EQ(count_kind(p, TileOp::Kind::kStoreLower), expect_lower);
}

TEST(TileProgram, GemmCountMatchesClosedForm) {
  // Top-looking gemm count: sum_kk sum_{nn<kk} nn.
  const TileProgram p = build_tile_program(40, 8, Looking::kTop);
  const int t = p.grid();
  int expect = 0;
  for (int kk = 0; kk < t; ++kk) {
    for (int nn = 0; nn < kk; ++nn) expect += nn;
  }
  EXPECT_EQ(count_kind(p, TileOp::Kind::kGemm), expect);
}

TEST(TileProgram, AllLookingsHaveSamePotrfAndTrsmWork) {
  // Every variant factors the same t diagonal tiles and solves the same
  // t(t-1)/2 panel tiles.
  for (const int n : {16, 24, 40}) {
    const int nb = 8;
    const int t = (n + nb - 1) / nb;
    for (const auto looking :
         {Looking::kRight, Looking::kLeft, Looking::kTop}) {
      const auto p = build_tile_program(n, nb, looking);
      EXPECT_EQ(count_kind(p, TileOp::Kind::kPotrf), t);
      EXPECT_EQ(count_kind(p, TileOp::Kind::kTrsm), t * (t - 1) / 2);
    }
  }
}

// ------------------------------------------------------- corner cases --

TEST(TileProgram, CornerTilesHaveReducedDims) {
  const TileProgram p = build_tile_program(10, 4, Looking::kTop);  // 4+4+2
  bool saw_corner = false;
  for (const auto& op : p.ops) {
    if (op.kind == TileOp::Kind::kPotrf && op.row0 == 8) {
      EXPECT_EQ(op.rows, 2);
      saw_corner = true;
    }
  }
  EXPECT_TRUE(saw_corner);
}

TEST(TileProgram, ValidateCatchesCorruptedProgram) {
  TileProgram p = build_tile_program(8, 4, Looking::kTop);
  // Corrupt: load out of bounds.
  p.ops[0].row0 = 100;
  EXPECT_THROW((void)validate_program(p), Error);
}

TEST(TileProgram, ValidateCatchesUseBeforeLoad) {
  TileProgram p;
  p.n = 4;
  p.nb = 4;
  p.ops.push_back({TileOp::Kind::kPotrf, 0, 0, 0, 0, 0, 4, 4, 0});
  EXPECT_THROW((void)validate_program(p), Error);
}

TEST(TileProgram, ValidateCatchesDimMismatch) {
  TileProgram p;
  p.n = 8;
  p.nb = 4;
  p.ops.push_back({TileOp::Kind::kLoadLower, 0, 0, 0, 0, 0, 4, 4, 0});
  p.ops.push_back({TileOp::Kind::kLoadFull, 1, 0, 0, 4, 0, 4, 4, 0});
  // Syrk claims kdim 2 but the A tile has 4 columns.
  p.ops.push_back({TileOp::Kind::kSyrk, 1, 0, 0, 0, 0, 4, 4, 2});
  EXPECT_THROW((void)validate_program(p), Error);
}

// --------------------------------------------------------- descriptions --

TEST(TileProgram, ToStringsAreInformative) {
  const TileProgram p = build_tile_program(8, 4, Looking::kLeft);
  EXPECT_NE(p.to_string().find("left"), std::string::npos);
  EXPECT_NE(to_string(p.ops[0]).find("load"), std::string::npos);
  EXPECT_EQ(to_string(Looking::kTop), "top");
  EXPECT_EQ(to_string(Unroll::kFull), "full");
  EXPECT_EQ(to_string(MathMode::kFastMath), "fast");
}

TEST(TileProgram, EnumParsersRoundTrip) {
  for (const auto l : {Looking::kRight, Looking::kLeft, Looking::kTop}) {
    EXPECT_EQ(looking_from_string(to_string(l)), l);
  }
  for (const auto u : {Unroll::kPartial, Unroll::kFull}) {
    EXPECT_EQ(unroll_from_string(to_string(u)), u);
  }
  for (const auto m : {MathMode::kIeee, MathMode::kFastMath}) {
    EXPECT_EQ(math_from_string(to_string(m)), m);
  }
  EXPECT_THROW((void)looking_from_string("sideways"), Error);
  EXPECT_THROW((void)unroll_from_string("none"), Error);
  EXPECT_THROW((void)math_from_string("exact"), Error);
}

}  // namespace
}  // namespace ibchol
