// Tests for the ALS recommender built on the batch Cholesky API.
#include <gtest/gtest.h>

#include <set>

#include "als/als.hpp"
#include "als/ratings.hpp"
#include "util/error.hpp"

namespace ibchol {
namespace {

RatingsOptions small_options() {
  RatingsOptions opt;
  opt.num_users = 300;
  opt.num_items = 200;
  opt.planted_rank = 4;
  opt.ratings_per_user = 25;
  opt.noise = 0.05;
  opt.seed = 2024;
  return opt;
}

// ------------------------------------------------------------ ratings ----

TEST(Ratings, ShapeAndDeterminism) {
  const RatingsDataset a = generate_ratings(small_options());
  const RatingsDataset b = generate_ratings(small_options());
  EXPECT_EQ(a.num_users, 300);
  EXPECT_EQ(a.num_items, 200);
  EXPECT_GT(a.train_size(), 4000u);
  ASSERT_EQ(a.train_size(), b.train_size());
  for (std::size_t i = 0; i < a.train.size(); ++i) {
    EXPECT_EQ(a.train[i].user, b.train[i].user);
    EXPECT_EQ(a.train[i].item, b.train[i].item);
    EXPECT_EQ(a.train[i].value, b.train[i].value);
  }
}

TEST(Ratings, TestFractionApproximatelyRespected) {
  const RatingsDataset ds = generate_ratings(small_options());
  const double frac = static_cast<double>(ds.test.size()) /
                      (ds.test.size() + ds.train.size());
  EXPECT_NEAR(frac, 0.1, 0.03);
}

TEST(Ratings, AdjacencyConsistent) {
  const RatingsDataset ds = generate_ratings(small_options());
  std::size_t total = 0;
  for (int u = 0; u < ds.num_users; ++u) {
    for (const auto idx : ds.by_user[u]) {
      EXPECT_EQ(ds.train[idx].user, u);
      ++total;
    }
  }
  EXPECT_EQ(total, ds.train.size());
  total = 0;
  for (int i = 0; i < ds.num_items; ++i) {
    for (const auto idx : ds.by_item[i]) {
      EXPECT_EQ(ds.train[idx].item, i);
      ++total;
    }
  }
  EXPECT_EQ(total, ds.train.size());
}

TEST(Ratings, NoDuplicateUserItemPairs) {
  const RatingsDataset ds = generate_ratings(small_options());
  std::set<std::pair<int, int>> seen;
  for (const auto& r : ds.train) {
    EXPECT_TRUE(seen.insert({r.user, r.item}).second)
        << r.user << "," << r.item;
  }
}

TEST(Ratings, ZipfSkewsItemPopularity) {
  const RatingsDataset ds = generate_ratings(small_options());
  // The most popular item must be observed far more often than the median.
  std::vector<std::size_t> counts;
  for (const auto& items : ds.by_item) counts.push_back(items.size());
  std::sort(counts.begin(), counts.end());
  EXPECT_GT(counts.back(), 3 * std::max<std::size_t>(counts[counts.size() / 2], 1));
}

TEST(Ratings, RejectsBadOptions) {
  RatingsOptions opt = small_options();
  opt.num_users = 0;
  EXPECT_THROW((void)generate_ratings(opt), Error);
}

// ---------------------------------------------------------------- als ----

TEST(Als, RecoversPlantedStructure) {
  const RatingsDataset ds = generate_ratings(small_options());
  AlsOptions opt;
  opt.rank = 8;
  opt.lambda = 0.02;
  opt.iterations = 8;
  AlsRecommender als(ds, opt);
  const auto history = als.run();
  ASSERT_EQ(history.size(), 8u);
  // RMSE must come down substantially toward the noise floor (0.05).
  EXPECT_LT(history.back().train_rmse, 0.1);
  EXPECT_LT(history.back().test_rmse, 0.25);
  // And be non-increasing overall (first vs last).
  EXPECT_LT(history.back().train_rmse, history.front().train_rmse);
}

TEST(Als, TrainRmseMonotonicallyImprovesEarly) {
  const RatingsDataset ds = generate_ratings(small_options());
  AlsOptions opt;
  opt.rank = 8;
  opt.iterations = 4;
  AlsRecommender als(ds, opt);
  const auto history = als.run();
  for (std::size_t i = 1; i < history.size(); ++i) {
    EXPECT_LE(history[i].train_rmse, history[i - 1].train_rmse * 1.05);
  }
}

TEST(Als, FactorSecondsArePositive) {
  const RatingsDataset ds = generate_ratings(small_options());
  AlsOptions opt;
  opt.iterations = 1;
  AlsRecommender als(ds, opt);
  const auto history = als.run();
  EXPECT_GT(history[0].factor_seconds, 0.0);
}

TEST(Als, TuningParametersInterchangeable) {
  // Different kernel variants must give numerically comparable results.
  const RatingsDataset ds = generate_ratings(small_options());
  AlsOptions a;
  a.rank = 8;
  a.iterations = 3;
  a.tuning.unroll = Unroll::kFull;
  AlsOptions b = a;
  b.tuning.unroll = Unroll::kPartial;
  b.tuning.nb = 4;
  b.tuning.looking = Looking::kRight;
  b.tuning.chunked = false;
  AlsRecommender ra(ds, a), rb(ds, b);
  const double rmse_a = ra.run().back().train_rmse;
  const double rmse_b = rb.run().back().train_rmse;
  EXPECT_NEAR(rmse_a, rmse_b, 0.02);
}

TEST(Als, PredictUsesFactors) {
  const RatingsDataset ds = generate_ratings(small_options());
  AlsOptions opt;
  opt.rank = 4;
  opt.iterations = 2;
  AlsRecommender als(ds, opt);
  als.run();
  const float p = als.predict(0, 0);
  double manual = 0.0;
  for (int d = 0; d < 4; ++d) {
    manual += static_cast<double>(als.user_factors()[d]) *
              als.item_factors()[d];
  }
  EXPECT_NEAR(p, manual, 1e-5);
}

TEST(Als, RejectsBadOptions) {
  const RatingsDataset ds = generate_ratings(small_options());
  AlsOptions opt;
  opt.rank = 0;
  EXPECT_THROW(AlsRecommender(ds, opt), Error);
}

TEST(Als, HandlesUsersWithoutRatings) {
  // A tiny dataset where some users have no training ratings: the
  // regularized system is still SPD (lambda * I), so ALS must not fail.
  RatingsOptions opt = small_options();
  opt.num_users = 50;
  opt.num_items = 20;
  opt.ratings_per_user = 2;
  opt.test_fraction = 0.5;  // push many ratings into the test split
  const RatingsDataset ds = generate_ratings(opt);
  AlsOptions aopt;
  aopt.rank = 4;
  aopt.iterations = 2;
  AlsRecommender als(ds, aopt);
  EXPECT_NO_THROW(als.run());
}

}  // namespace
}  // namespace ibchol
