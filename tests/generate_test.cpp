// Tests for the SPD batch generators and failure injection.
#include <gtest/gtest.h>

#include <vector>

#include "cpu/reference.hpp"
#include "layout/convert.hpp"
#include "layout/generate.hpp"

namespace ibchol {
namespace {

class SpdGenTest : public ::testing::TestWithParam<SpdKind> {};

TEST_P(SpdGenTest, MatricesAreSymmetric) {
  const auto l = BatchLayout::canonical(6, 20);
  std::vector<double> data(l.size_elems());
  SpdOptions opt;
  opt.kind = GetParam();
  generate_spd_batch<double>(l, data, opt);
  for (std::int64_t b = 0; b < 20; ++b) {
    for (int j = 0; j < 6; ++j) {
      for (int i = 0; i < 6; ++i) {
        EXPECT_NEAR(data[l.index(b, i, j)], data[l.index(b, j, i)], 1e-12);
      }
    }
  }
}

TEST_P(SpdGenTest, MatricesArePositiveDefinite) {
  const int n = 8;
  const auto l = BatchLayout::canonical(n, 50);
  std::vector<double> data(l.size_elems());
  SpdOptions opt;
  opt.kind = GetParam();
  generate_spd_batch<double>(l, data, opt);
  std::vector<double> m(n * n);
  for (std::int64_t b = 0; b < 50; ++b) {
    extract_matrix<double>(l, data, b, m);
    EXPECT_EQ(potrf_unblocked(n, m.data(), n), 0) << "matrix " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, SpdGenTest,
                         ::testing::Values(SpdKind::kGramPlusDiagonal,
                                           SpdKind::kDiagonallyDominant,
                                           SpdKind::kControlledCondition));

TEST(SpdGen, DeterministicInSeed) {
  const auto l = BatchLayout::interleaved(4, 32);
  std::vector<float> a(l.size_elems()), b(l.size_elems());
  generate_spd_batch<float>(l, a, {SpdKind::kGramPlusDiagonal, 5, 100.0});
  generate_spd_batch<float>(l, b, {SpdKind::kGramPlusDiagonal, 5, 100.0});
  EXPECT_EQ(a, b);
  generate_spd_batch<float>(l, b, {SpdKind::kGramPlusDiagonal, 6, 100.0});
  EXPECT_NE(a, b);
}

TEST(SpdGen, SameMatricesAcrossLayouts) {
  // The generator must be layout-transparent: matrix b is numerically
  // identical no matter which layout it was generated into.
  const int n = 5;
  const auto canon = BatchLayout::canonical(n, 40);
  const auto chunked = BatchLayout::interleaved_chunked(n, 40, 32);
  std::vector<float> a(canon.size_elems()), b(chunked.size_elems());
  generate_spd_batch<float>(canon, a);
  generate_spd_batch<float>(chunked, b);
  std::vector<float> ma(n * n), mb(n * n);
  for (std::int64_t i : {0, 7, 39}) {
    extract_matrix<float>(canon, std::span<const float>(a), i, ma);
    extract_matrix<float>(chunked, std::span<const float>(b), i, mb);
    EXPECT_EQ(ma, mb) << "matrix " << i;
  }
}

TEST(SpdGen, PaddingIsIdentity) {
  const auto l = BatchLayout::interleaved_chunked(3, 33, 32);
  std::vector<float> data(l.size_elems());
  generate_spd_batch<float>(l, data);
  for (std::int64_t b = 33; b < l.padded_batch(); ++b) {
    for (int j = 0; j < 3; ++j) {
      for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(data[l.index(b, i, j)], i == j ? 1.0f : 0.0f);
      }
    }
  }
}

TEST(SpdGen, ControlledConditionHitsTarget) {
  const int n = 6;
  const auto l = BatchLayout::canonical(n, 4);
  std::vector<double> data(l.size_elems());
  SpdOptions opt;
  opt.kind = SpdKind::kControlledCondition;
  opt.condition = 50.0;
  generate_spd_batch<double>(l, data, opt);
  // Eigenvalue extremes via the diagonal of the factored form are hard to
  // read directly; instead verify the matrix is SPD and its trace is within
  // the eigenvalue bounds n·[1/cond, 1].
  std::vector<double> m(n * n);
  extract_matrix<double>(l, data, 0, m);
  double trace = 0.0;
  for (int i = 0; i < n; ++i) trace += m[i + i * n];
  EXPECT_GT(trace, n / 50.0);
  EXPECT_LT(trace, n * 1.0 + 1e-9);
  EXPECT_EQ(potrf_unblocked(n, m.data(), n), 0);
}

TEST(Poison, MakesExactlyThatMatrixFail) {
  const int n = 6;
  const auto l = BatchLayout::interleaved(n, 32);
  std::vector<float> data(l.size_elems());
  generate_spd_batch<float>(l, data);
  poison_matrix<float>(l, data, 5, 3);
  std::vector<float> m(n * n);
  for (std::int64_t b = 0; b < 32; ++b) {
    extract_matrix<float>(l, std::span<const float>(data), b, m);
    const int info = potrf_unblocked(n, m.data(), n);
    if (b == 5) {
      EXPECT_EQ(info, 4);  // fails at column index 3 (1-based: 4)
    } else {
      EXPECT_EQ(info, 0);
    }
  }
}

TEST(Poison, RejectsBadPosition) {
  const auto l = BatchLayout::canonical(4, 4);
  std::vector<float> data(l.size_elems());
  EXPECT_THROW(poison_matrix<float>(l, data, 0, 4), Error);
  EXPECT_THROW(poison_matrix<float>(l, data, 0, -1), Error);
}

}  // namespace
}  // namespace ibchol
