// End-to-end integration: autotune -> pick winner -> execute on the CPU
// substrate -> verify numerics; plus codegen for the winning variant.
#include <gtest/gtest.h>

#include <vector>

#include "autotune/analyze.hpp"
#include "autotune/evaluator.hpp"
#include "autotune/sweep.hpp"
#include "core/batch_cholesky.hpp"
#include "cpu/reference.hpp"
#include "kernels/cuda_codegen.hpp"
#include "layout/convert.hpp"
#include "cpu/batch_factor.hpp"
#include "layout/generate.hpp"
#include "util/aligned_buffer.hpp"
#include "util/timer.hpp"

namespace ibchol {
namespace {

TEST(Integration, SweepWinnerFactorsCorrectly) {
  // 1. Autotune on the model.
  ModelEvaluator eval(KernelModel(GpuSpec::p100()));
  SweepOptions opt;
  opt.sizes = {16};
  opt.space.tile_sizes = {1, 2, 4, 8};
  opt.space.chunk_sizes = {32, 64};
  const SweepDataset ds = run_sweep(eval, opt);
  const auto winners = select_winners(ds);
  ASSERT_TRUE(winners.count(16));
  const TuningParams params = winners.at(16);

  // 2. Execute the winning variant on real data.
  const int n = 16;
  const std::int64_t batch = 500;
  const BatchLayout layout = BatchCholesky::make_layout(n, batch, params);
  const BatchCholesky chol(layout, params);
  AlignedBuffer<float> data(layout.size_elems());
  generate_spd_batch<float>(layout, data.span());
  std::vector<float> orig(data.begin(), data.end());
  ASSERT_TRUE(chol.factorize<float>(data.span()).ok());

  // 3. Verify the factors.
  std::vector<float> a(n * n), l(n * n);
  for (const std::int64_t b : {std::int64_t{0}, batch - 1}) {
    extract_matrix<float>(layout, std::span<const float>(orig), b, a);
    extract_matrix<float>(layout, std::span<const float>(data.span()), b, l);
    EXPECT_LT(reconstruction_error<float>(n, a, l), 1e-5);
  }
}

TEST(Integration, WinnerVariantHasGeneratableSource) {
  ModelEvaluator eval(KernelModel(GpuSpec::p100()));
  SweepOptions opt;
  opt.sizes = {24};
  opt.space.tile_sizes = {2, 4, 8};  // divisors of 24 generate cleanly
  opt.space.chunk_sizes = {64};
  opt.space.include_non_chunked = false;
  const SweepDataset ds = run_sweep(eval, opt);
  const TuningParams params = select_winners(ds).at(24);

  CodegenConfig cfg;
  cfg.n = 24;
  cfg.nb = params.effective_nb(24);
  cfg.looking = params.looking;
  cfg.unroll = params.unroll;
  cfg.chunk = params.chunked ? params.chunk_size : 64;
  cfg.math = params.math;
  if (24 % cfg.nb != 0) GTEST_SKIP() << "winner tile does not divide n";
  const std::string src = generate_cuda_kernel(cfg);
  EXPECT_NE(src.find("__global__"), std::string::npos);
}

TEST(Integration, ModelAndCpuAgreeOnHeadlineOrderings) {
  // The central claims must hold on BOTH substrates: (a) chunked
  // interleaved beats the canonical baseline at small n on the measured
  // CPU path too; (b) nb=8 beats nb=1 at n=48.
  const int n = 16;
  const std::int64_t batch = 4096;

  CpuMeasuredEvaluator::Options mopt;
  mopt.warmup = 1;
  mopt.reps = 3;
  CpuMeasuredEvaluator cpu(mopt);

  TuningParams interleaved;
  interleaved.nb = n;
  interleaved.unroll = Unroll::kFull;
  interleaved.chunked = true;
  interleaved.chunk_size = 64;
  const double t_inter = cpu.seconds(n, batch, interleaved);

  // Canonical baseline: per-matrix blocked factorization.
  const auto canon = BatchLayout::canonical(n, batch);
  AlignedBuffer<float> data(canon.size_elems());
  generate_spd_batch<float>(canon, data.span());
  std::vector<float> pristine(data.begin(), data.end());
  double t_canon = 1e300;
  for (int rep = 0; rep < 4; ++rep) {
    std::copy(pristine.begin(), pristine.end(), data.begin());
    Timer t;
    (void)factor_batch_cpu<float>(canon, data.span(), {});
    t_canon = std::min(t_canon, t.seconds());
  }
  EXPECT_LT(t_inter, t_canon)
      << "interleaved SIMD path must beat per-matrix canonical at n=16";

  // And the model agrees directionally.
  KernelModel model(GpuSpec::p100());
  const double g_inter = model.evaluate(n, 16384, interleaved).gflops;
  EXPECT_GT(g_inter, 0.0);
}

TEST(Integration, FullAnalysisPipelineOnModelData) {
  ModelEvaluator eval(KernelModel(GpuSpec::p100()), 0.02);
  SweepOptions opt;
  opt.sizes = {8, 24, 48};
  opt.space.tile_sizes = {1, 4, 8};
  opt.space.chunk_sizes = {32, 512};
  const SweepDataset ds = run_sweep(eval, opt);

  ForestOptions fopt;
  fopt.num_trees = 40;
  const AnalysisResult res = analyze_dataset(ds, fopt);
  EXPECT_GT(res.correlation, 0.85);
  EXPECT_EQ(res.table.size(), 10u);

  // CSV round trip of the full dataset reproduces the analysis inputs.
  const SweepDataset back = SweepDataset::from_csv(ds.to_csv());
  EXPECT_EQ(back.size(), ds.size());
}

}  // namespace
}  // namespace ibchol
