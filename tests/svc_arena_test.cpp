// Tests for the service's size-classed scratch arena: alignment, size
// classing, reuse (the zero-steady-state-allocation property), lease RAII
// semantics, and thread-safety under concurrent acquire/release.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <new>
#include <thread>
#include <vector>

#include "svc/arena.hpp"
#include "util/aligned_buffer.hpp"
#include "util/fault_inject.hpp"

namespace ibchol::svc {
namespace {

TEST(ScratchArena, BlocksAreAlignedAndAtLeastRequested) {
  ScratchArena arena;
  for (std::size_t bytes : {std::size_t{1}, std::size_t{4096},
                            std::size_t{4097}, std::size_t{1} << 20,
                            (std::size_t{1} << 20) + 1}) {
    ArenaLease lease = arena.acquire(bytes);
    ASSERT_TRUE(lease.valid());
    EXPECT_GE(lease.bytes(), bytes);
    EXPECT_GE(lease.bytes(), ScratchArena::kMinBlockBytes);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(lease.data()) %
                  kBatchAlignment,
              0u);
    // The block is writable over its full class size.
    std::memset(lease.data(), 0xAB, lease.bytes());
  }
}

TEST(ScratchArena, SizeClassesArePowersOfTwo) {
  ScratchArena arena;
  ArenaLease a = arena.acquire(4096);
  ArenaLease b = arena.acquire(4097);
  EXPECT_EQ(a.bytes(), 4096u);
  EXPECT_EQ(b.bytes(), 8192u);
}

TEST(ScratchArena, ReleaseThenAcquireReusesTheBlock) {
  ScratchArena arena;
  void* first;
  {
    ArenaLease lease = arena.acquire(10000);
    first = lease.data();
  }  // released to the 16KiB class's free list
  ArenaLease again = arena.acquire(9000);  // same class
  EXPECT_EQ(again.data(), first);
  const ArenaStats stats = arena.stats();
  EXPECT_EQ(stats.upstream_allocs, 1u);
  EXPECT_EQ(stats.acquires, 2u);
  EXPECT_EQ(stats.reuses, 1u);
}

TEST(ScratchArena, DistinctClassesDoNotShareBlocks) {
  ScratchArena arena;
  { ArenaLease small = arena.acquire(4096); }
  ArenaLease large = arena.acquire(1 << 20);  // different class: fresh block
  const ArenaStats stats = arena.stats();
  EXPECT_EQ(stats.upstream_allocs, 2u);
  EXPECT_EQ(stats.reuses, 0u);
  EXPECT_EQ(stats.cached_blocks, 1u);  // the small one is parked
}

TEST(ScratchArena, SteadyStateIsAllocationFree) {
  ScratchArena arena;
  // Warm-up: establish the working set (two concurrent blocks per class).
  for (int i = 0; i < 3; ++i) {
    ArenaLease a = arena.acquire(1 << 16);
    ArenaLease b = arena.acquire(1 << 16);
    ArenaLease c = arena.acquire(1 << 20);
  }
  const std::uint64_t warm = arena.stats().upstream_allocs;
  for (int i = 0; i < 100; ++i) {
    ArenaLease a = arena.acquire(1 << 16);
    ArenaLease b = arena.acquire(1 << 16);
    ArenaLease c = arena.acquire(1 << 20);
  }
  EXPECT_EQ(arena.stats().upstream_allocs, warm);
}

TEST(ScratchArena, LeaseMoveTransfersOwnership) {
  ScratchArena arena;
  ArenaLease a = arena.acquire(4096);
  void* p = a.data();
  ArenaLease b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): tested
  ASSERT_TRUE(b.valid());
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(arena.stats().live_leases, 1u);

  ArenaLease c = arena.acquire(4096);
  c = std::move(b);  // move-assign releases c's old block first
  EXPECT_EQ(c.data(), p);
  EXPECT_EQ(arena.stats().live_leases, 1u);
}

TEST(ScratchArena, ResetIsIdempotentAndReturnsBlock) {
  ScratchArena arena;
  ArenaLease lease = arena.acquire(4096);
  lease.reset();
  EXPECT_FALSE(lease.valid());
  lease.reset();  // idempotent
  const ArenaStats stats = arena.stats();
  EXPECT_EQ(stats.live_leases, 0u);
  EXPECT_EQ(stats.cached_blocks, 1u);
}

TEST(ScratchArena, NoLeaksAcrossManyLeases) {
  ScratchArena arena;
  for (int i = 0; i < 50; ++i) {
    std::vector<ArenaLease> leases;
    for (int j = 0; j < 8; ++j) {
      leases.push_back(arena.acquire(static_cast<std::size_t>(4096) << (j % 4)));
    }
  }
  const ArenaStats stats = arena.stats();
  EXPECT_EQ(stats.live_leases, 0u);
  // Working set bounded by the per-class concurrency high-water mark
  // (2 leases per class × 4 classes here), never by the lease count.
  EXPECT_LE(stats.cached_blocks, 8u);
  EXPECT_EQ(stats.upstream_allocs, stats.cached_blocks);
}

TEST(ScratchArena, ConcurrentAcquireReleaseIsSafe) {
  ScratchArena arena;
  constexpr int kThreads = 4;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&arena, t] {
      for (int i = 0; i < kIters; ++i) {
        ArenaLease lease =
            arena.acquire(static_cast<std::size_t>(4096) << ((i + t) % 3));
        // Touch the block so a double-hand-out would trip the sanitizer.
        static_cast<std::uint8_t*>(lease.data())[0] =
            static_cast<std::uint8_t>(t);
      }
    });
  }
  for (auto& th : threads) th.join();
  const ArenaStats stats = arena.stats();
  EXPECT_EQ(stats.live_leases, 0u);
  EXPECT_EQ(stats.acquires,
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(stats.acquires, stats.reuses + stats.upstream_allocs);
  // At most kThreads blocks of each of the 3 classes ever live at once.
  EXPECT_LE(stats.upstream_allocs, 3u * kThreads);
}

// ---------------------------------------------- upstream failure paths ----
// Chaos-forced allocation failures stand in for real OOM: same code path,
// deterministic trigger. Gated on the compile-time chaos switch.

TEST(ScratchArena, FailedAllocLeavesAccountingClean) {
  if constexpr (!chaos::kEnabled) {
    GTEST_SKIP() << "chaos hooks compiled out (IBCHOL_CHAOS=OFF)";
  }
  ScratchArena arena;
  chaos::SvcChaosPlan plan;
  plan.alloc_fail_rate = 1.0;
  chaos::install_svc_chaos(plan);
  EXPECT_THROW((void)arena.acquire(4096), std::bad_alloc);
  EXPECT_THROW((void)arena.acquire(1 << 20), std::bad_alloc);
  chaos::uninstall_svc_chaos();

  // A failed acquire moves only `acquires` and `failed_allocs`: no lease
  // went live, nothing was fetched upstream, nothing leaked.
  const ArenaStats after = arena.stats();
  EXPECT_EQ(after.acquires, 2u);
  EXPECT_EQ(after.failed_allocs, 2u);
  EXPECT_EQ(after.upstream_allocs, 0u);
  EXPECT_EQ(after.upstream_bytes, 0u);
  EXPECT_EQ(after.live_leases, 0u);
  EXPECT_EQ(after.cached_blocks, 0u);

  // The arena is unharmed: the same request now succeeds.
  ArenaLease lease = arena.acquire(4096);
  EXPECT_TRUE(lease.valid());
  EXPECT_EQ(arena.stats().upstream_allocs, 1u);
}

TEST(ScratchArena, FreeListHitsAreImmuneToUpstreamFailure) {
  if constexpr (!chaos::kEnabled) {
    GTEST_SKIP() << "chaos hooks compiled out (IBCHOL_CHAOS=OFF)";
  }
  ScratchArena arena;
  { ArenaLease warm = arena.acquire(4096); }  // parks one 4KiB block

  chaos::SvcChaosPlan plan;
  plan.alloc_fail_rate = 1.0;
  chaos::install_svc_chaos(plan);
  // Pool hit: no upstream draw, so total upstream failure cannot touch it.
  ArenaLease lease = arena.acquire(4096);
  EXPECT_TRUE(lease.valid());
  // Pool miss in another class still fails.
  EXPECT_THROW((void)arena.acquire(1 << 20), std::bad_alloc);
  chaos::uninstall_svc_chaos();

  const ArenaStats stats = arena.stats();
  EXPECT_EQ(stats.reuses, 1u);
  EXPECT_EQ(stats.failed_allocs, 1u);
  EXPECT_EQ(stats.upstream_allocs, 1u);  // only the warm-up block
}

TEST(ScratchArena, SeededPartialFailureSequenceIsReproducible) {
  if constexpr (!chaos::kEnabled) {
    GTEST_SKIP() << "chaos hooks compiled out (IBCHOL_CHAOS=OFF)";
  }
  // Same seed + same draw index => same verdict: run the identical draw
  // sequence twice and compare the failure patterns bit for bit. Leases
  // are held so every acquire is an upstream draw.
  const auto run = [] {
    chaos::SvcChaosPlan plan;
    plan.seed = 5;
    plan.alloc_fail_rate = 0.5;
    chaos::install_svc_chaos(plan);
    ScratchArena arena;
    std::vector<ArenaLease> held;
    std::vector<bool> pattern;
    for (int i = 0; i < 32; ++i) {
      try {
        held.push_back(arena.acquire(4096));
        pattern.push_back(true);
      } catch (const std::bad_alloc&) {
        pattern.push_back(false);
      }
    }
    chaos::uninstall_svc_chaos();
    return pattern;
  };
  const std::vector<bool> first = run();
  const std::vector<bool> second = run();
  EXPECT_EQ(first, second);
  // A 0.5 rate over 32 draws leaves both outcomes present (deterministic
  // given the fixed seed — this pins that the rate is actually applied).
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);
}

}  // namespace
}  // namespace ibchol::svc
