// Numerical-accuracy property tests: behavior of the single-precision
// batch factorization across condition numbers, sizes and substrates.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/batch_cholesky.hpp"
#include "cpu/batch_solve.hpp"
#include "cpu/reference.hpp"
#include "layout/convert.hpp"
#include "layout/generate.hpp"
#include "util/aligned_buffer.hpp"

namespace ibchol {
namespace {

struct AccuracyCase {
  int n;
  double condition;
};

void PrintTo(const AccuracyCase& c, std::ostream* os) {
  *os << "n" << c.n << "_cond" << c.condition;
}

class AccuracyTest : public ::testing::TestWithParam<AccuracyCase> {};

// Backward stability: the reconstruction error ||A - L·Lᵀ||/||A|| of the
// float factorization stays near machine epsilon regardless of the
// condition number (Cholesky is backward stable).
TEST_P(AccuracyTest, ReconstructionNearEpsilonForAnyCondition) {
  const auto [n, condition] = GetParam();
  const std::int64_t batch = 64;
  const TuningParams params = recommended_params(n);
  const BatchLayout layout = BatchCholesky::make_layout(n, batch, params);
  AlignedBuffer<float> data(layout.size_elems());
  SpdOptions gen;
  gen.kind = SpdKind::kControlledCondition;
  gen.condition = condition;
  generate_spd_batch<float>(layout, data.span(), gen);
  const std::vector<float> orig(data.begin(), data.end());

  const BatchCholesky chol(layout, params);
  ASSERT_TRUE(chol.factorize<float>(data.span()).ok());

  std::vector<float> a(n * n), l(n * n);
  for (const std::int64_t b : {std::int64_t{0}, batch - 1}) {
    extract_matrix<float>(layout, std::span<const float>(orig), b, a);
    extract_matrix<float>(layout, std::span<const float>(data.span()), b, l);
    // Bound: a modest multiple of n * eps_single, independent of cond.
    EXPECT_LT(reconstruction_error<float>(n, a, l), n * 3e-6)
        << "b=" << b << " cond=" << condition;
  }
}

// Forward error of the solve grows at most ~ condition * eps.
TEST_P(AccuracyTest, SolveErrorBoundedByCondition) {
  const auto [n, condition] = GetParam();
  const std::int64_t batch = 64;
  const TuningParams params = recommended_params(n);
  const BatchLayout layout = BatchCholesky::make_layout(n, batch, params);
  AlignedBuffer<float> data(layout.size_elems());
  SpdOptions gen;
  gen.kind = SpdKind::kControlledCondition;
  gen.condition = condition;
  generate_spd_batch<float>(layout, data.span(), gen);
  const std::vector<float> orig(data.begin(), data.end());
  const BatchCholesky chol(layout, params);
  ASSERT_TRUE(chol.factorize<float>(data.span()).ok());

  // b = A·x_true with x_true = ones; solve and compare.
  const auto vlayout = BatchVectorLayout::matching(layout);
  AlignedBuffer<float> rhs(vlayout.size_elems());
  std::vector<float> a(n * n);
  for (std::int64_t b = 0; b < batch; ++b) {
    extract_matrix<float>(layout, std::span<const float>(orig), b, a);
    for (int i = 0; i < n; ++i) {
      double acc = 0.0;
      for (int j = 0; j < n; ++j) {
        acc += static_cast<double>(i >= j ? a[i + j * n] : a[j + i * n]);
      }
      rhs[vlayout.index(b, i)] = static_cast<float>(acc);
    }
  }
  chol.solve<float>(std::span<const float>(data.span()), vlayout, rhs.span());

  double worst = 0.0;
  for (std::int64_t b = 0; b < batch; ++b) {
    for (int i = 0; i < n; ++i) {
      worst = std::max(worst,
                       std::abs(rhs[vlayout.index(b, i)] - 1.0));
    }
  }
  // Forward error ~ cond * n * eps with a safety factor.
  EXPECT_LT(worst, condition * n * 1e-5);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AccuracyTest,
    ::testing::Values(AccuracyCase{8, 10.0}, AccuracyCase{8, 1e4},
                      AccuracyCase{24, 10.0}, AccuracyCase{24, 1e3},
                      AccuracyCase{48, 100.0}));

// All kernel variants agree with each other to a few ulps on the same
// inputs: the factor is unique, only rounding order differs.
TEST(Accuracy, VariantsAgreeWithinRounding) {
  const int n = 24;
  const std::int64_t batch = 64;
  const BatchLayout canon = BatchLayout::canonical(n, batch);
  AlignedBuffer<float> master(canon.size_elems());
  generate_spd_batch<float>(canon, master.span());

  std::vector<std::vector<float>> results;
  std::vector<TuningParams> variants;
  for (const Looking looking : {Looking::kRight, Looking::kTop}) {
    for (const int nb : {2, 8}) {
      TuningParams p;
      p.nb = nb;
      p.looking = looking;
      variants.push_back(p);
    }
  }
  TuningParams full;
  full.unroll = Unroll::kFull;
  variants.push_back(full);

  for (const TuningParams& p : variants) {
    const BatchLayout layout = BatchCholesky::make_layout(n, batch, p);
    AlignedBuffer<float> data(layout.size_elems());
    convert_layout<float>(canon, std::span<const float>(master.span()),
                          layout, data.span());
    const BatchCholesky chol(layout, p);
    EXPECT_TRUE(chol.factorize<float>(data.span()).ok());
    std::vector<float> l(n * n);
    extract_matrix<float>(layout, std::span<const float>(data.span()), 17, l);
    results.push_back(std::move(l));
  }
  for (std::size_t v = 1; v < results.size(); ++v) {
    for (int j = 0; j < n; ++j) {
      for (int i = j; i < n; ++i) {
        const float ref = results[0][i + j * n];
        EXPECT_NEAR(results[v][i + j * n], ref,
                    2e-5f * std::max(1.0f, std::abs(ref)))
            << "variant " << v << " (" << i << "," << j << ")";
      }
    }
  }
}

// NaN containment: a non-SPD matrix poisons only itself; its lane-block
// neighbors factor exactly as they would without it.
TEST(Accuracy, FailurePoisonIsContained) {
  const int n = 16;
  const auto layout = BatchLayout::interleaved_chunked(n, 64, 32);
  AlignedBuffer<float> clean(layout.size_elems());
  generate_spd_batch<float>(layout, clean.span());
  AlignedBuffer<float> dirty(layout.size_elems());
  std::copy(clean.begin(), clean.end(), dirty.begin());
  poison_matrix<float>(layout, dirty.span(), 10, 4);

  const TuningParams params = recommended_params(n);
  const BatchLayout plotter = BatchCholesky::make_layout(n, 64, params);
  (void)plotter;
  CpuFactorOptions opt;
  (void)factor_batch_cpu<float>(layout, clean.span(), opt);
  (void)factor_batch_cpu<float>(layout, dirty.span(), opt);

  // Every matrix except #10 must be bit-identical between the two runs.
  for (std::int64_t b = 0; b < 64; ++b) {
    if (b == 10) continue;
    for (int j = 0; j < n; ++j) {
      for (int i = j; i < n; ++i) {
        ASSERT_EQ(clean[layout.index(b, i, j)], dirty[layout.index(b, i, j)])
            << "matrix " << b << " disturbed by a failing neighbor";
      }
    }
  }
  // And the poisoned one contains NaNs past the failing column.
  bool saw_nan = false;
  for (int j = 4; j < n; ++j) {
    for (int i = j; i < n; ++i) {
      if (std::isnan(dirty[layout.index(10, i, j)])) saw_nan = true;
    }
  }
  EXPECT_TRUE(saw_nan);
}

// Double-precision factorization is strictly more accurate than single.
TEST(Accuracy, DoubleBeatsSingle) {
  const int n = 32;
  const std::int64_t batch = 32;
  const TuningParams params = recommended_params(n);
  const BatchLayout layout = BatchCholesky::make_layout(n, batch, params);

  AlignedBuffer<double> d(layout.size_elems());
  SpdOptions gen;
  gen.kind = SpdKind::kControlledCondition;
  gen.condition = 1e4;
  generate_spd_batch<double>(layout, d.span(), gen);
  AlignedBuffer<float> f(layout.size_elems());
  for (std::size_t i = 0; i < d.size(); ++i) {
    f[i] = static_cast<float>(d[i]);
  }
  const std::vector<double> orig_d(d.begin(), d.end());

  const BatchCholesky chol(layout, params);
  ASSERT_TRUE(chol.factorize<double>(d.span()).ok());
  ASSERT_TRUE(chol.factorize<float>(f.span()).ok());

  std::vector<double> a(n * n), ld(n * n);
  std::vector<float> lf(n * n);
  extract_matrix<double>(layout, std::span<const double>(orig_d), 3, a);
  extract_matrix<double>(layout, std::span<const double>(d.span()), 3, ld);
  extract_matrix<float>(layout, std::span<const float>(f.span()), 3, lf);
  std::vector<double> lf_d(lf.begin(), lf.end());
  const double err_d = reconstruction_error<double>(n, a, ld);
  const double err_f =
      reconstruction_error<double>(n, a, std::span<const double>(lf_d));
  EXPECT_LT(err_d, err_f / 100.0);
}

}  // namespace
}  // namespace ibchol
