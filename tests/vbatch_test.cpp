// Tests for variable-size batches and the batched log-determinant.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/vbatch.hpp"
#include "cpu/batch_factor.hpp"
#include "cpu/batch_solve.hpp"
#include "cpu/reference.hpp"
#include "layout/generate.hpp"
#include "util/aligned_buffer.hpp"
#include "util/rng.hpp"

namespace ibchol {
namespace {

// Fills matrix b of a vbatch with a deterministic SPD matrix; returns the
// dense copy for verification.
std::vector<float> fill_spd(const VBatchCholesky& vb, std::span<float> data,
                            std::int64_t b, std::uint64_t seed) {
  const int n = vb.size_of(b);
  Xoshiro256 rng(seed ^ (0x9e3779b97f4a7c15ULL * (b + 1)));
  std::vector<double> g(static_cast<std::size_t>(n) * n);
  for (auto& v : g) v = rng.uniform(-1.0, 1.0);
  std::vector<float> dense(static_cast<std::size_t>(n) * n);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      double acc = (i == j) ? n : 0.0;
      for (int k = 0; k < n; ++k) {
        acc += g[i + static_cast<std::size_t>(k) * n] *
               g[j + static_cast<std::size_t>(k) * n];
      }
      dense[i + static_cast<std::size_t>(j) * n] = static_cast<float>(acc);
      data[vb.index(b, i, j)] = static_cast<float>(acc);
    }
  }
  return dense;
}

TEST(VBatch, MixedSizesFactorCorrectly) {
  std::vector<int> sizes;
  Xoshiro256 rng(3);
  for (int b = 0; b < 200; ++b) {
    sizes.push_back(2 + static_cast<int>(rng.uniform_index(30)));
  }
  const VBatchCholesky vb(sizes);
  EXPECT_GT(vb.num_groups(), 5u);
  AlignedBuffer<float> data(vb.size_elems());
  std::vector<std::vector<float>> dense(200);
  for (std::int64_t b = 0; b < 200; ++b) {
    dense[b] = fill_spd(vb, data.span(), b, 99);
  }
  const FactorResult res = vb.factorize<float>(data.span());
  EXPECT_TRUE(res.ok());

  for (const std::int64_t b : {std::int64_t{0}, std::int64_t{57},
                               std::int64_t{199}}) {
    const int n = vb.size_of(b);
    std::vector<float> l(static_cast<std::size_t>(n) * n, 0.0f);
    for (int j = 0; j < n; ++j) {
      for (int i = j; i < n; ++i) {
        l[i + static_cast<std::size_t>(j) * n] = data[vb.index(b, i, j)];
      }
    }
    EXPECT_LT(reconstruction_error<float>(n, dense[b], l), 1e-5) << b;
  }
}

TEST(VBatch, SolveMixedSizes) {
  std::vector<int> sizes{3, 17, 8, 8, 25, 3, 12};
  const VBatchCholesky vb(sizes);
  AlignedBuffer<float> data(vb.size_elems());
  std::vector<std::vector<float>> dense(sizes.size());
  for (std::int64_t b = 0; b < static_cast<std::int64_t>(sizes.size()); ++b) {
    dense[b] = fill_spd(vb, data.span(), b, 7);
  }
  ASSERT_TRUE(vb.factorize<float>(data.span()).ok());

  AlignedBuffer<float> rhs(vb.rhs_size_elems());
  for (std::int64_t b = 0; b < static_cast<std::int64_t>(sizes.size()); ++b) {
    for (int i = 0; i < vb.size_of(b); ++i) rhs[vb.rhs_index(b, i)] = 1.0f;
  }
  vb.solve<float>(std::span<const float>(data.span()), rhs.span());

  for (std::int64_t b = 0; b < static_cast<std::int64_t>(sizes.size()); ++b) {
    const int n = vb.size_of(b);
    std::vector<float> x(n), ones(n, 1.0f);
    for (int i = 0; i < n; ++i) x[i] = rhs[vb.rhs_index(b, i)];
    EXPECT_LT(residual_error<float>(n, dense[b], x, ones), 1e-4) << b;
  }
}

TEST(VBatch, InfoMapsToOriginalOrder) {
  std::vector<int> sizes{6, 9, 6, 9, 6};
  const VBatchCholesky vb(sizes);
  AlignedBuffer<float> data(vb.size_elems());
  for (std::int64_t b = 0; b < 5; ++b) fill_spd(vb, data.span(), b, 11);
  // Poison matrix 3 (size 9) at diagonal position 4.
  for (int j = 0; j < 9; ++j) {
    for (int i = 0; i < 9; ++i) {
      float v = (i == j) ? 1.0f : 0.0f;
      if (i == 4 && j == 4) v = -1.0f;
      data[vb.index(3, i, j)] = v;
    }
  }
  std::vector<std::int32_t> info(5, -1);
  const FactorResult res = vb.factorize<float>(data.span(), info);
  EXPECT_EQ(res.failed_count, 1);
  EXPECT_EQ(res.first_failed, 3);
  EXPECT_EQ(info[3], 5);
  EXPECT_EQ(info[0], 0);
  EXPECT_EQ(info[4], 0);
}

TEST(VBatch, IndexIsInBoundsAndInjective) {
  std::vector<int> sizes{2, 5, 2, 7};
  const VBatchCholesky vb(sizes);
  std::vector<char> seen(vb.size_elems(), 0);
  for (std::int64_t b = 0; b < 4; ++b) {
    for (int j = 0; j < vb.size_of(b); ++j) {
      for (int i = 0; i < vb.size_of(b); ++i) {
        const std::size_t off = vb.index(b, i, j);
        ASSERT_LT(off, vb.size_elems());
        ASSERT_EQ(seen[off], 0) << "aliasing at " << off;
        seen[off] = 1;
      }
    }
  }
}

TEST(VBatch, UniformSizesMatchPlainBatch) {
  std::vector<int> sizes(50, 10);
  const VBatchCholesky vb(sizes);
  EXPECT_EQ(vb.num_groups(), 1u);
  const TuningParams params = recommended_params(10);
  const BatchLayout plain = BatchCholesky::make_layout(10, 50, params);
  EXPECT_EQ(vb.size_elems(), plain.size_elems());
}

TEST(VBatch, RejectsBadSizes) {
  EXPECT_THROW(VBatchCholesky({}), Error);
  EXPECT_THROW(VBatchCholesky({4, 0, 3}), Error);
}

// ----------------------------------------------------------- logdet ------

TEST(Logdet, MatchesDensePivotProduct) {
  const int n = 9;
  const auto layout = BatchLayout::interleaved_chunked(n, 64, 32);
  AlignedBuffer<double> data(layout.size_elems());
  generate_spd_batch<double>(layout, data.span());
  AlignedBuffer<double> factors(layout.size_elems());
  std::copy(data.begin(), data.end(), factors.begin());
  ASSERT_TRUE(factor_batch_cpu<double>(layout, factors.span(), {}).ok());

  std::vector<double> ld(64);
  batch_logdet<double>(layout, std::span<const double>(factors.span()), ld);

  // Independent check: product of squared diagonal pivots.
  for (const std::int64_t b : {std::int64_t{0}, std::int64_t{40}}) {
    double expected = 0.0;
    for (int i = 0; i < n; ++i) {
      expected += 2.0 * std::log(factors[layout.index(b, i, i)]);
    }
    EXPECT_NEAR(ld[b], expected, 1e-12);
    EXPECT_TRUE(std::isfinite(ld[b]));
  }
}

TEST(Logdet, IdentityIsZero) {
  const int n = 5;
  const auto layout = BatchLayout::interleaved(n, 32);
  AlignedBuffer<float> factors(layout.size_elems());
  for (std::int64_t b = 0; b < 32; ++b) {
    for (int i = 0; i < n; ++i) factors[layout.index(b, i, i)] = 1.0f;
  }
  std::vector<double> ld(32);
  batch_logdet<float>(layout, std::span<const float>(factors.span()), ld);
  for (const double v : ld) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Logdet, FailedFactorGivesNan) {
  const int n = 4;
  const auto layout = BatchLayout::interleaved(n, 32);
  AlignedBuffer<float> factors(layout.size_elems());
  for (std::int64_t b = 0; b < 32; ++b) {
    for (int i = 0; i < n; ++i) factors[layout.index(b, i, i)] = 2.0f;
  }
  factors[layout.index(7, 2, 2)] = -1.0f;  // broken pivot
  std::vector<double> ld(32);
  batch_logdet<float>(layout, std::span<const float>(factors.span()), ld);
  EXPECT_TRUE(std::isnan(ld[7]));
  EXPECT_FALSE(std::isnan(ld[6]));
}

}  // namespace
}  // namespace ibchol
